module Bitset = Hr_util.Bitset

type event = { step : int; hyper_load : int; reconf_load : int }

type run = { total_time : int; events : event list; hyper_ops : int }

(* Per-task runtime state: the hypercontext currently loaded and the
   plan segments still ahead. *)
type task_state = {
  v : int;
  trace : Trace.t;
  mutable current : Hypercontext.t option;
  mutable pending : Plan.segment list;
}

let execute ?(params = Sync_cost.default_params) ts plan =
  let m = Task_set.num_tasks ts and n = Task_set.steps ts in
  if Plan.num_tasks plan <> m || Plan.steps plan <> n then
    Error "machine_vm: plan/instance dimension mismatch"
  else begin
    let states =
      Array.init m (fun j ->
          let t = Task_set.get ts j in
          {
            v = t.Task_set.v;
            trace = t.Task_set.trace;
            current = None;
            pending = Plan.segments plan j;
          })
    in
    let combine mode parts =
      match mode with
      | Sync_cost.Task_parallel -> List.fold_left max 0 parts
      | Sync_cost.Task_sequential -> List.fold_left ( + ) 0 parts
    in
    let hyper_ops = ref 0 in
    let events = ref [] in
    let error = ref None in
    let step = ref 0 in
    while !error = None && !step < n do
      let i = !step in
      (* Phase 1: partial hyperreconfigurations scheduled at this step. *)
      let hyper_parts =
        Array.to_list states
        |> List.filter_map (fun st ->
               match st.pending with
               | seg :: rest when seg.Plan.lo = i ->
                   st.current <- Some seg.Plan.hc;
                   st.pending <- rest;
                   incr hyper_ops;
                   Some st.v
               | _ -> None)
      in
      let hyper_load = combine params.Sync_cost.hyper hyper_parts in
      (* Phase 2: every task reconfigures within its hypercontext. *)
      let reconf_parts = ref [] in
      Array.iteri
        (fun j st ->
          match st.current with
          | None ->
              if !error = None then
                error := Some (Printf.sprintf "task %d has no hypercontext at step %d" j i)
          | Some hc ->
              if not (Hypercontext.satisfies hc (Trace.req st.trace i)) then begin
                if !error = None then
                  error :=
                    Some
                      (Printf.sprintf
                         "task %d step %d: requirement escapes the hypercontext" j i)
              end
              else reconf_parts := Hypercontext.cost hc :: !reconf_parts)
        states;
      if !error = None then begin
        let reconf_load =
          (match params.Sync_cost.reconf with
          | Sync_cost.Task_parallel -> List.fold_left max params.Sync_cost.pub !reconf_parts
          | Sync_cost.Task_sequential ->
              List.fold_left ( + ) params.Sync_cost.pub !reconf_parts)
        in
        events := { step = i; hyper_load; reconf_load } :: !events;
        incr step
      end
    done;
    match !error with
    | Some msg -> Error msg
    | None ->
        let events = List.rev !events in
        let total_time =
          List.fold_left
            (fun acc e -> acc + e.hyper_load + e.reconf_load)
            params.Sync_cost.w events
        in
        Ok { total_time; events; hyper_ops = !hyper_ops }
  end

let execute_breakpoints ?params ts bp =
  execute ?params ts (Plan.of_breakpoints ts bp)
