(** Cost of a breakpoint matrix on a fully synchronized machine.

    Implements the §4.2 cost formula for the fully synchronized
    MT-Switch machine (and, through {!Interval_cost}, for the other
    models).  Between two global hyperreconfigurations the total
    (hyper)reconfiguration time is

    {v
    w + Σ_i ( H_i + R_i )
    v}

    where, per machine step [i]:
    - [H_i] combines the local hyperreconfiguration costs [v_j] of the
      tasks with [I_{j,i} = 1] — by [max] when partial
      hyperreconfiguration is uploaded task-parallel, by [Σ] when
      task-sequential;
    - [R_i] combines the per-task ordinary reconfiguration costs
      (|h^loc| + |h^priv| under the switch model, i.e.
      [step_cost j lo hi] of the block containing [i]) and the public
      global cost |h^pub| — by [max] (task-parallel) or [Σ]
      (task-sequential). *)

(** Upload mode of the reconfiguration bits (paper, §4). *)
type upload = Task_parallel | Task_sequential

(** Evaluation parameters: global-init cost [w] (0 when the machine has
    no global resources and hence no global hyperreconfigurations),
    public-global per-step cost [pub] (|h^pub|, 0 when absent), and the
    upload modes for partial hyperreconfiguration and for
    reconfiguration. *)
type params = { w : int; pub : int; hyper : upload; reconf : upload }

(** Paper §6 experimental setting: no global resources, no public
    resources, everything task-parallel. *)
val default_params : params

(** [eval ?params oracle bp] is the total (hyper)reconfiguration time of
    plan [bp].  Raises [Invalid_argument] when dimensions of [bp] and
    [oracle] disagree. *)
val eval : ?params:params -> Interval_cost.t -> Breakpoints.t -> int

(** [eval_per_step ?params oracle bp] returns per-step pairs
    [(H_i, R_i)] — the series plotted in Fig. 2-style renderings —
    whose sum plus [w] equals {!eval}. *)
val eval_per_step : ?params:params -> Interval_cost.t -> Breakpoints.t -> (int * int) array

(** [disabled_cost ?pub oracle ~machine_width] is the baseline with
    hyperreconfiguration disabled: the full hypercontext (all
    [machine_width] switches of the machine) is permanently available
    and every reconfiguration step pays for all of it; no
    hyperreconfiguration cost is ever paid.  For the paper's SHyRA
    experiment this is 48 · n. *)
val disabled_cost : ?pub:int -> n:int -> machine_width:int -> unit -> int

(** [step_reconf_costs oracle bp] is, per task, the per-step
    reconfiguration cost array (each entry is the block cost of the
    block containing that step) — used by the figure renderers. *)
val step_reconf_costs : Interval_cost.t -> Breakpoints.t -> int array array
