type result = { cost : int; breaks : int list; nodes : int list }

let solve model seq =
  let n = Array.length seq in
  if n = 0 then invalid_arg "St_dag_opt.solve: empty sequence";
  let table = Dag_model.block_cost_table model seq in
  let w = Dag_model.w model in
  let node_cost h = (Dag_model.node model h).Dag_model.cost in
  let step_cost lo hi = node_cost table.(lo).(hi - lo) in
  let r = St_opt.solve ~v:w ~n ~step_cost in
  (* Recover the chosen node of each block. *)
  let rec blocks = function
    | [] -> []
    | [ lo ] -> [ (lo, n - 1) ]
    | lo :: (next :: _ as rest) -> (lo, next - 1) :: blocks rest
  in
  let nodes = List.map (fun (lo, hi) -> table.(lo).(hi - lo)) (blocks r.St_opt.breaks) in
  { cost = r.St_opt.cost; breaks = r.St_opt.breaks; nodes }

let greedy model seq =
  let n = Array.length seq in
  if n = 0 then invalid_arg "St_dag_opt.greedy: empty sequence";
  let pick c =
    match Dag_model.cheapest_for model [ c ] with
    | Some h -> h
    | None -> invalid_arg "St_dag_opt.greedy: unsatisfiable context"
  in
  let rec go i current breaks nodes =
    if i >= n then (List.rev breaks, List.rev nodes)
    else if Dag_model.satisfies model current seq.(i) then
      go (i + 1) current breaks nodes
    else
      let h = pick seq.(i) in
      go (i + 1) h (i :: breaks) (h :: nodes)
  in
  let h0 = pick seq.(0) in
  let breaks, nodes = go 1 h0 [ 0 ] [ h0 ] in
  let cost =
    let rec blocks = function
      | [] -> []
      | [ lo ] -> [ (lo, n - 1) ]
      | lo :: (next :: _ as rest) -> (lo, next - 1) :: blocks rest
    in
    List.fold_left2
      (fun acc (lo, hi) h ->
        acc + Dag_model.w model + ((Dag_model.node model h).Dag_model.cost * (hi - lo + 1)))
      0 (blocks breaks) nodes
  in
  { cost; breaks; nodes }

let cost_of model seq ~breaks ~nodes =
  let n = Array.length seq in
  let rec blocks = function
    | [] -> invalid_arg "St_dag_opt.cost_of: empty breakpoint list"
    | [ lo ] -> [ (lo, n - 1) ]
    | lo :: (next :: _ as rest) -> (lo, next - 1) :: blocks rest
  in
  let bs = blocks breaks in
  if List.length bs <> List.length nodes then
    invalid_arg "St_dag_opt.cost_of: breaks/nodes arity mismatch";
  List.fold_left2
    (fun acc (lo, hi) h ->
      for i = lo to hi do
        if not (Dag_model.satisfies model h seq.(i)) then
          invalid_arg
            (Printf.sprintf "St_dag_opt.cost_of: node %d does not satisfy step %d" h i)
      done;
      acc + Dag_model.w model + ((Dag_model.node model h).Dag_model.cost * (hi - lo + 1)))
    0 bs nodes
