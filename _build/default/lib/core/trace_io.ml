module Bitset = Hr_util.Bitset

let to_string trace =
  let buf = Buffer.create 4096 in
  let space = Trace.space trace in
  let width = Switch_space.size space in
  Buffer.add_string buf (Printf.sprintf "trace %d %d\n" width (Trace.length trace));
  Buffer.add_string buf
    (String.concat " " (List.init width (Switch_space.name space)) ^ "\n");
  for i = 0 to Trace.length trace - 1 do
    Buffer.add_string buf
      (String.concat " " (List.map string_of_int (Bitset.to_list (Trace.req trace i))));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let fail line msg = failwith (Printf.sprintf "Trace_io: line %d: %s" line msg)

let of_string s =
  (* Strip comments but keep line numbers; drop trailing blank lines
     (step lines may legitimately be empty — an empty requirement). *)
  let content =
    String.split_on_char '\n' s
    |> List.mapi (fun i l ->
           let l =
             match String.index_opt l '#' with
             | Some k -> String.sub l 0 k
             | None -> l
           in
           (i + 1, String.trim l))
  in
  (* Blank lines are skippable only before the header and the names
     line; step lines are positional because an empty line is a valid
     (empty) requirement. *)
  let rec skip_blank = function (_, "") :: rest -> skip_blank rest | l -> l in
  match skip_blank content with
  | (no1, header) :: rest -> (
      match skip_blank rest with
      | (no2, names_line) :: steps -> (
      let width, n =
        match String.split_on_char ' ' header with
        | [ "trace"; w; n ] -> (
            match (int_of_string_opt w, int_of_string_opt n) with
            | Some w, Some n when w >= 0 && n >= 0 -> (w, n)
            | _ -> fail no1 "bad width/steps in header")
        | _ -> fail no1 "expected 'trace <width> <steps>'"
      in
      let names =
        List.filter (fun s -> s <> "") (String.split_on_char ' ' names_line)
      in
      if List.length names <> width then
        fail no2
          (Printf.sprintf "expected %d switch names, got %d" width (List.length names));
      let space = Switch_space.make ~names:(Array.of_list names) width in
      (* Exactly n positional step lines; anything after must be blank
         (the trailing newline of the writer). *)
      let step_lines = List.filteri (fun i _ -> i < n) steps in
      let excess = List.filteri (fun i _ -> i >= n) steps in
      if List.length step_lines <> n then
        fail no2
          (Printf.sprintf "expected %d step lines, got %d" n (List.length step_lines));
      (match List.find_opt (fun (_, l) -> l <> "") excess with
      | Some (no, _) -> fail no "trailing content after the last step"
      | None -> ());
      let parse_step (no, line) =
        let idxs =
          List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
          |> List.map (fun tok ->
                 match int_of_string_opt tok with
                 | Some i when i >= 0 && i < width -> i
                 | _ -> fail no (Printf.sprintf "bad switch index %S" tok))
        in
        Bitset.of_list width idxs
      in
      Trace.make space (Array.of_list (List.map parse_step step_lines)))
      | [] -> failwith "Trace_io: truncated input (missing the names line)")
  | [] -> failwith "Trace_io: truncated input (need a header and a names line)"

let save path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string trace))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
