(** Optimal single-task planning under the DAG cost model.

    Same block dynamic program as {!St_opt} — the DAG model's
    hyperreconfiguration cost is the constant [w] of the model and the
    per-step cost of a block is the cost of the cheapest hypercontext
    node satisfying every requirement of the block.  O(n²·|H|)
    including the block table. *)

type result = {
  cost : int;
  breaks : int list;  (** hyperreconfiguration steps, head = 0 *)
  nodes : int list;  (** chosen hypercontext node per block, in order *)
}

(** [solve model seq] plans the context-id sequence [seq] optimally.
    Raises [Invalid_argument] on empty sequences or out-of-range
    ids. *)
val solve : Dag_model.t -> int array -> result

(** [greedy model seq] is the online baseline: start at a cheapest node
    for the first context and move (paying [w]) to a cheapest node for
    the current context whenever the current node stops satisfying it.
    Never better than {!solve}. *)
val greedy : Dag_model.t -> int array -> result

(** [cost_of model seq ~breaks ~nodes] evaluates an arbitrary plan:
    Σ blocks (w + cost(node)·len).  Raises when a block's node does not
    satisfy one of its requirements. *)
val cost_of : Dag_model.t -> int array -> breaks:int list -> nodes:int list -> int
