(** Concrete plans: breakpoints plus the chosen hypercontexts.

    {!Breakpoints} fixes only {e when} each task hyperreconfigures; a
    [Plan.t] also fixes {e into what}.  For the switch model the
    optimizers always choose the minimal valid hypercontext of each
    block (the union of its requirements), but plans can carry larger
    hypercontexts — needed for the changeover-cost variant where
    enlarging a hypercontext can pay off — so validity and cost are
    defined for arbitrary hypercontext choices and are cross-checked
    against the oracle-based {!Sync_cost} in the test suite. *)

type segment = {
  lo : int;  (** first step covered (a breakpoint of the task) *)
  hi : int;  (** last step covered, inclusive *)
  hc : Hypercontext.t;  (** hypercontext in force during [lo..hi] *)
}

type t

(** [of_breakpoints ts bp] materializes the minimal (union)
    hypercontexts for every block of every task of [ts]. *)
val of_breakpoints : Task_set.t -> Breakpoints.t -> t

(** [make segments] builds a plan from per-task segment lists; checks
    that each task's segments tile [0..n-1] contiguously.  Raises
    [Invalid_argument] otherwise. *)
val make : segment list array -> t

(** [segments t j] is task [j]'s segment list in step order. *)
val segments : t -> int -> segment list

(** [num_tasks t] and [steps t] are the plan dimensions. *)
val num_tasks : t -> int

val steps : t -> int

(** [breakpoints t] forgets the hypercontexts. *)
val breakpoints : t -> Breakpoints.t

(** [hypercontext_at t j i] is the hypercontext of task [j] in force at
    step [i]. *)
val hypercontext_at : t -> int -> int -> Hypercontext.t

(** [validate t ts] checks the plan against the instance: every
    requirement of every step must be satisfied by the hypercontext in
    force ([c_{j,i} ⊆ h_j(i)], paper §2).  Returns [Error msg] naming
    the first violating (task, step). *)
val validate : t -> Task_set.t -> (unit, string) result

(** [cost_sync ?params t] evaluates the §4.2 fully synchronized switch
    cost directly from the concrete hypercontexts (|h| per step,
    combined across tasks by max or Σ according to [params]).  For
    union plans this equals [Sync_cost.eval]. *)
val cost_sync : ?params:Sync_cost.params -> t -> v:int array -> int

(** [cost_changeover t ~v ~w] evaluates the changeover-cost variant
    (paper §4.1): each partial hyperreconfiguration of task [j] costs
    [v.(j) + |h Δ h'|] where [h'] is the task's previous hypercontext
    (the empty set before the first one); combined across tasks by max
    per step (task-parallel), plus the per-step reconfiguration max as
    usual; [w] is added once. *)
val cost_changeover : t -> v:int array -> w:int -> int

(** [with_segment t j k hc] replaces the hypercontext of task [j]'s
    [k]-th segment (0-based) — the local-search move of the changeover
    optimizer. *)
val with_segment : t -> int -> int -> Hypercontext.t -> t
