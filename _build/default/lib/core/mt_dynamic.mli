(** Dynamic multi-task environments: tasks arriving and departing.

    The paper's machines run a fixed set of tasks, with {e global}
    hyperreconfigurations (cost [w], barrier-synchronizing, after which
    every surviving task must locally hyperreconfigure) re-defining the
    assignment of resources.  This module models the natural dynamic
    extension: a timeline of epochs, each with its own set of active
    tasks; every epoch boundary is a global hyperreconfiguration that
    re-partitions the fabric's switches among the new task set, and
    inside an epoch the machine is the usual fully synchronized
    partially hyperreconfigurable one.

    Switch assignment at an epoch boundary is demand-proportional:
    every active task receives its own switches (the union of its
    requirements during the epoch) — a feasibility requirement — and
    cost accounting then proceeds with the §4.1 special-case
    [v_j = l_j] on the epoch-local instance. *)

(** One epoch: the tasks (name + machine-wide requirement trace over
    the epoch's steps, all over the same fabric-wide switch space). *)
type epoch = { tasks : (string * Trace.t) list }

type plan = {
  total_cost : int;  (** Σ epochs (w + epoch's optimized local cost) *)
  epoch_costs : int list;
  epoch_task_counts : int list;
}

(** [solve ?optimize ~w epochs] plans each epoch independently
    ([optimize] defaults to greedy + hill climbing) and charges [w]
    per epoch boundary.  Raises [Invalid_argument] when two active
    tasks of one epoch demand the same switch (local resources are
    exclusively owned, §3), when an epoch has no tasks or no steps, or
    when epochs disagree on the fabric width. *)
val solve :
  ?optimize:(Interval_cost.t -> int) -> w:int -> epoch list -> plan

(** [random_epochs rng ~width ~epochs ~steps_per_epoch ~max_tasks] —
    a synthetic arrival/departure workload: each epoch activates
    1..[max_tasks] tasks on disjoint random slices of the fabric with
    phased local traffic. *)
val random_epochs :
  Hr_util.Rng.t ->
  width:int ->
  epochs:int ->
  steps_per_epoch:int ->
  max_tasks:int ->
  epoch list
