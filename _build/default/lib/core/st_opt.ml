type result = { cost : int; breaks : int list }

let solve ~v ~n ~step_cost =
  if n < 1 then invalid_arg "St_opt.solve: n must be >= 1";
  if v < 0 then invalid_arg "St_opt.solve: negative v";
  (* f.(j) = optimal cost of covering steps 0..j-1; choice.(j) = start of
     the last block of an optimal cover. *)
  let f = Array.make (n + 1) max_int in
  let choice = Array.make (n + 1) 0 in
  f.(0) <- 0;
  for j = 0 to n - 1 do
    for i = 0 to j do
      let c = f.(i) + v + (step_cost i j * (j - i + 1)) in
      if c < f.(j + 1) then begin
        f.(j + 1) <- c;
        choice.(j + 1) <- i
      end
    done
  done;
  let rec collect j acc = if j = 0 then acc else collect choice.(j) (choice.(j) :: acc) in
  { cost = f.(n); breaks = collect n [] }

let blocks_of_breaks ~n breaks =
  match breaks with
  | [] -> invalid_arg "St_opt: empty breakpoint list"
  | 0 :: _ ->
      let rec go = function
        | [] -> []
        | [ lo ] -> [ (lo, n - 1) ]
        | lo :: (next :: _ as rest) ->
            if next <= lo || next > n - 1 then
              invalid_arg "St_opt: breakpoints not strictly ascending/in range";
            (lo, next - 1) :: go rest
      in
      go breaks
  | _ -> invalid_arg "St_opt: first breakpoint must be step 0"

let cost_of_breaks ~v ~n ~step_cost breaks =
  blocks_of_breaks ~n breaks
  |> List.fold_left
       (fun acc (lo, hi) -> acc + v + (step_cost lo hi * (hi - lo + 1)))
       0

let plan_of_breaks trace breaks =
  blocks_of_breaks ~n:(Trace.length trace) breaks
  |> List.map (fun (lo, hi) -> Trace.range_union trace lo hi)

let solve_trace ?v trace =
  let v = match v with Some v -> v | None -> Switch_space.size (Trace.space trace) in
  let ru = Range_union.make trace in
  let result =
    solve ~v ~n:(Trace.length trace) ~step_cost:(fun lo hi -> Range_union.size ru lo hi)
  in
  (result, plan_of_breaks trace result.breaks)

let solve_bounded ~v ~n ~step_cost ~max_blocks =
  if n < 1 then invalid_arg "St_opt.solve_bounded: n must be >= 1";
  if max_blocks < 1 then invalid_arg "St_opt.solve_bounded: need at least one block";
  let kmax = min max_blocks n in
  (* f.(k).(j) = best cost of covering steps 0..j-1 with exactly <= k
     blocks; choice for reconstruction. *)
  let f = Array.make_matrix (kmax + 1) (n + 1) max_int in
  let choice = Array.make_matrix (kmax + 1) (n + 1) 0 in
  f.(0).(0) <- 0;
  for k = 1 to kmax do
    f.(k).(0) <- 0;
    for j = 0 to n - 1 do
      for i = 0 to j do
        if f.(k - 1).(i) < max_int then begin
          let c = f.(k - 1).(i) + v + (step_cost i j * (j - i + 1)) in
          if c < f.(k).(j + 1) then begin
            f.(k).(j + 1) <- c;
            choice.(k).(j + 1) <- i
          end
        end
      done
    done
  done;
  if f.(kmax).(n) = max_int then
    invalid_arg "St_opt.solve_bounded: infeasible (internal)";
  (* Walk back through the block count that achieved the optimum. *)
  let rec collect k j acc =
    if j = 0 then acc
    else
      (* Find the k' <= k whose table realized f.(k).(j): since f is
         non-increasing in k, the stored choice at level k is valid. *)
      collect (k - 1) choice.(k).(j) (choice.(k).(j) :: acc)
  in
  { cost = f.(kmax).(n); breaks = collect kmax n [] }

let frontier ~v ~n ~step_cost =
  let unconstrained = solve ~v ~n ~step_cost in
  let rec go k last acc =
    if k > n then List.rev acc
    else
      let r = solve_bounded ~v ~n ~step_cost ~max_blocks:k in
      let acc = if r.cost < last then (k, r.cost) :: acc else acc in
      if r.cost = unconstrained.cost then List.rev acc
      else go (k + 1) (min last r.cost) acc
  in
  go 1 max_int []

let solve_oracle (oracle : Interval_cost.t) ~task =
  solve ~v:oracle.Interval_cost.v.(task) ~n:oracle.Interval_cost.n
    ~step_cost:(fun lo hi -> oracle.Interval_cost.step_cost task lo hi)
