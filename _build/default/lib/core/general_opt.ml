module Bitset = Hr_util.Bitset

type explicit_hc = { name : string; init : int; cost : int; sat : Bitset.t -> bool }

type result = { cost : int; breaks : int list }

(* Shared block DP: f.(j) = best cost of covering steps 0..j-1, where
   [block_cost lo hi] is the best (init + cost·len) over admissible
   hypercontexts for the block, or None when unsatisfiable. *)
let block_dp ~n ~block_cost =
  let f = Array.make (n + 1) max_int in
  let choice = Array.make (n + 1) 0 in
  f.(0) <- 0;
  for j = 0 to n - 1 do
    for i = 0 to j do
      match block_cost i j with
      | None -> ()
      | Some c ->
          if f.(i) < max_int && f.(i) + c < f.(j + 1) then begin
            f.(j + 1) <- f.(i) + c;
            choice.(j + 1) <- i
          end
    done
  done;
  if f.(n) = max_int then
    invalid_arg "General_opt: some context requirement is satisfiable by no hypercontext";
  let rec collect j acc = if j = 0 then acc else collect choice.(j) (choice.(j) :: acc) in
  { cost = f.(n); breaks = collect n [] }

let solve_explicit hcs trace =
  let n = Trace.length trace in
  if n = 0 then invalid_arg "General_opt.solve_explicit: empty trace";
  if Array.length hcs = 0 then invalid_arg "General_opt.solve_explicit: no hypercontexts";
  (* alive.(lo) is refined incrementally; to keep the DP simple we
     precompute per-block best (value, hc index). *)
  let nh = Array.length hcs in
  let best = Array.init n (fun _ -> Array.make n None) in
  for lo = 0 to n - 1 do
    let alive = Array.make nh true in
    for hi = lo to n - 1 do
      let req = Trace.req trace hi in
      for h = 0 to nh - 1 do
        if alive.(h) && not (hcs.(h).sat req) then alive.(h) <- false
      done;
      let len = hi - lo + 1 in
      let b = ref None in
      for h = 0 to nh - 1 do
        if alive.(h) then begin
          let c = hcs.(h).init + (hcs.(h).cost * len) in
          match !b with
          | Some (c', _) when c' <= c -> ()
          | _ -> b := Some (c, h)
        end
      done;
      best.(lo).(hi) <- !b
    done
  done;
  let r =
    block_dp ~n ~block_cost:(fun lo hi ->
        Option.map fst best.(lo).(hi))
  in
  let rec blocks = function
    | [] -> []
    | [ lo ] -> [ (lo, n - 1) ]
    | lo :: (next :: _ as rest) -> (lo, next - 1) :: blocks rest
  in
  let chosen =
    List.map
      (fun (lo, hi) ->
        match best.(lo).(hi) with Some (_, h) -> h | None -> assert false)
      (blocks r.breaks)
  in
  (r, chosen)

let solve_monotone ~init ~cost trace =
  let n = Trace.length trace in
  if n = 0 then invalid_arg "General_opt.solve_monotone: empty trace";
  (* Materialize block unions once per lo-row, like Range_union but
     keeping the sets because the cost oracles need them. *)
  let unions = Array.init n (fun _ -> Array.make n None) in
  for lo = 0 to n - 1 do
    let acc = ref (Bitset.copy (Trace.req trace lo)) in
    unions.(lo).(lo) <- Some !acc;
    for hi = lo + 1 to n - 1 do
      acc := Bitset.union_into ~into:(Bitset.copy !acc) (Trace.req trace hi);
      unions.(lo).(hi) <- Some !acc
    done
  done;
  block_dp ~n ~block_cost:(fun lo hi ->
      match unions.(lo).(hi) with
      | Some u -> Some (init u + (cost u * (hi - lo + 1)))
      | None -> None)

let subsets_of_width width =
  Seq.init (1 lsl width) (fun mask ->
      let rec bits i acc =
        if i >= width then acc
        else bits (i + 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
      in
      Bitset.of_list width (bits 0 []))

let solve_tiny ~init ~cost trace =
  let n = Trace.length trace in
  let width = Switch_space.size (Trace.space trace) in
  if width > 12 then invalid_arg "General_opt.solve_tiny: universe too large";
  if n > 10 then invalid_arg "General_opt.solve_tiny: trace too long";
  if n = 0 then invalid_arg "General_opt.solve_tiny: empty trace";
  let all_hcs = Array.of_seq (subsets_of_width width) in
  block_dp ~n ~block_cost:(fun lo hi ->
      let len = hi - lo + 1 in
      Array.fold_left
        (fun acc h ->
          let ok =
            let rec go i = i > hi || (Bitset.subset (Trace.req trace i) h && go (i + 1)) in
            go lo
          in
          if not ok then acc
          else
            let c = init h + (cost h * len) in
            match acc with Some c' when c' <= c -> acc | _ -> Some c)
        None all_hcs)
