type outcome = { cost : int; bp : Breakpoints.t; breaks : int list }

let combined_oracle ?(params = Sync_cost.default_params) (oracle : Interval_cost.t) =
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  let v_all = Array.to_list oracle.Interval_cost.v in
  let v =
    match params.Sync_cost.hyper with
    | Sync_cost.Task_parallel -> List.fold_left max 0 v_all
    | Sync_cost.Task_sequential -> List.fold_left ( + ) 0 v_all
  in
  let step_cost _task lo hi =
    let per_task = Array.init m (fun j -> oracle.Interval_cost.step_cost j lo hi) in
    match params.Sync_cost.reconf with
    | Sync_cost.Task_parallel -> Array.fold_left max params.Sync_cost.pub per_task
    | Sync_cost.Task_sequential -> Array.fold_left ( + ) params.Sync_cost.pub per_task
  in
  Interval_cost.make ~m:1 ~n ~v:[| v |] ~step_cost

let solve_all_task ?(params = Sync_cost.default_params) (oracle : Interval_cost.t) =
  let combined = combined_oracle ~params oracle in
  let r = St_opt.solve_oracle combined ~task:0 in
  let bp =
    Breakpoints.of_rows ~m:oracle.Interval_cost.m ~n:oracle.Interval_cost.n
      (Array.make oracle.Interval_cost.m r.St_opt.breaks)
  in
  (* The single-task objective counts w once per break; the multi-task
     evaluation adds params.w once on top, so align by re-evaluating. *)
  let cost = Sync_cost.eval ~params oracle bp in
  { cost; bp; breaks = r.St_opt.breaks }

let advantage ?params ~rng oracle =
  let all_task = solve_all_task ?params oracle in
  let ga = Mt_ga.solve ?params ~seeds:[ all_task.bp ] ~rng oracle in
  let polished = Mt_local.solve ?params ~init:ga.Mt_ga.bp oracle in
  (all_task.cost, polished.Mt_local.cost)
