type resource_class = Private_global | Public_global | Local

type machine_class =
  | Partially_reconfigurable
  | Partially_hyperreconfigurable
  | Restricted_partially_hyperreconfigurable

type sync_mode =
  | Hypercontext_synchronized
  | Context_synchronized
  | Fully_synchronized
  | Non_synchronized

type upload_mode = Task_parallel | Task_sequential

type machine = {
  cls : machine_class;
  sync : sync_mode;
  resources : resource_class list;
  hyper_upload : upload_mode;
  reconf_upload : upload_mode;
}

let context_synchronized = function
  | Context_synchronized | Fully_synchronized -> true
  | Hypercontext_synchronized | Non_synchronized -> false

let hypercontext_synchronized = function
  | Hypercontext_synchronized | Fully_synchronized -> true
  | Context_synchronized | Non_synchronized -> false

let public_globals_allowed sync = context_synchronized sync

let validate m =
  if List.mem Public_global m.resources && not (public_globals_allowed m.sync) then
    Error
      "public global resources require a context-synchronized or fully \
       synchronized machine (a reconfiguration of public resources influences \
       all tasks)"
  else if
    (not (context_synchronized m.sync)) && m.reconf_upload = Task_sequential
  then Error "non-context-synchronized reconfigurations must be task parallel"
  else if
    (not (hypercontext_synchronized m.sync)) && m.hyper_upload = Task_sequential
  then
    Error
      "non-hypercontext-synchronized partial hyperreconfigurations must be task \
       parallel"
  else Ok ()

let paper_experiment_machine =
  {
    cls = Partially_hyperreconfigurable;
    sync = Fully_synchronized;
    resources = [ Local ];
    hyper_upload = Task_parallel;
    reconf_upload = Task_parallel;
  }

let pp_resource_class ppf = function
  | Private_global -> Format.pp_print_string ppf "private-global"
  | Public_global -> Format.pp_print_string ppf "public-global"
  | Local -> Format.pp_print_string ppf "local"

let pp_machine_class ppf = function
  | Partially_reconfigurable -> Format.pp_print_string ppf "partially-reconfigurable"
  | Partially_hyperreconfigurable ->
      Format.pp_print_string ppf "partially-hyperreconfigurable"
  | Restricted_partially_hyperreconfigurable ->
      Format.pp_print_string ppf "restricted-partially-hyperreconfigurable"

let pp_sync_mode ppf = function
  | Hypercontext_synchronized -> Format.pp_print_string ppf "hypercontext-synchronized"
  | Context_synchronized -> Format.pp_print_string ppf "context-synchronized"
  | Fully_synchronized -> Format.pp_print_string ppf "fully-synchronized"
  | Non_synchronized -> Format.pp_print_string ppf "non-synchronized"

let pp_upload_mode ppf = function
  | Task_parallel -> Format.pp_print_string ppf "task-parallel"
  | Task_sequential -> Format.pp_print_string ppf "task-sequential"
