module Bitset = Hr_util.Bitset

type segment = { lo : int; hi : int; hc : Hypercontext.t }

type t = { segs : segment array array; n : int }

let check_tiling j segs =
  let rec go expected = function
    | [] -> expected
    | { lo; hi; _ } :: rest ->
        if lo <> expected || hi < lo then
          invalid_arg
            (Printf.sprintf "Plan.make: task %d segments do not tile (at step %d)" j
               expected);
        go (hi + 1) rest
  in
  go 0 segs

let make per_task =
  if Array.length per_task = 0 then invalid_arg "Plan.make: no tasks";
  let n = check_tiling 0 per_task.(0) in
  Array.iteri
    (fun j segs ->
      let nj = check_tiling j segs in
      if nj <> n then invalid_arg "Plan.make: tasks cover different step counts")
    per_task;
  if n = 0 then invalid_arg "Plan.make: empty plan";
  { segs = Array.map Array.of_list per_task; n }

let of_breakpoints ts bp =
  let m = Task_set.num_tasks ts in
  let per_task =
    Array.init m (fun j ->
        let trace = (Task_set.get ts j).Task_set.trace in
        List.map
          (fun (lo, hi) -> { lo; hi; hc = Trace.range_union trace lo hi })
          (Breakpoints.intervals bp j))
  in
  make per_task

let segments t j = Array.to_list t.segs.(j)
let num_tasks t = Array.length t.segs
let steps t = t.n

let breakpoints t =
  let m = num_tasks t and n = t.n in
  let bp = Array.init m (fun _ -> Array.make n false) in
  Array.iteri (fun j segs -> Array.iter (fun s -> bp.(j).(s.lo) <- true) segs) t.segs;
  Breakpoints.of_matrix bp

let hypercontext_at t j i =
  if i < 0 || i >= t.n then invalid_arg "Plan.hypercontext_at: step out of range";
  let segs = t.segs.(j) in
  let rec find k =
    let s = segs.(k) in
    if i <= s.hi then s.hc else find (k + 1)
  in
  find 0

let validate t ts =
  if Task_set.num_tasks ts <> num_tasks t || Task_set.steps ts <> t.n then
    Error "plan/instance dimension mismatch"
  else
    let m = num_tasks t in
    let rec check_task j =
      if j >= m then Ok ()
      else
        let trace = (Task_set.get ts j).Task_set.trace in
        let bad =
          Array.to_list t.segs.(j)
          |> List.find_map (fun s ->
                 let rec step i =
                   if i > s.hi then None
                   else if not (Hypercontext.satisfies s.hc (Trace.req trace i)) then
                     Some i
                   else step (i + 1)
                 in
                 step s.lo)
        in
        match bad with
        | Some i ->
            Error
              (Printf.sprintf
                 "task %d step %d: requirement not satisfied by hypercontext" j i)
        | None -> check_task (j + 1)
    in
    check_task 0

(* Per-task per-step |h| and break indicators. *)
let per_step_sizes t =
  let m = num_tasks t in
  Array.init m (fun j ->
      let sizes = Array.make t.n 0 and breaks = Array.make t.n false in
      Array.iter
        (fun s ->
          breaks.(s.lo) <- true;
          let c = Hypercontext.cost s.hc in
          for i = s.lo to s.hi do
            sizes.(i) <- c
          done)
        t.segs.(j);
      (sizes, breaks))

let cost_sync ?(params = Sync_cost.default_params) t ~v =
  if Array.length v <> num_tasks t then invalid_arg "Plan.cost_sync: |v| mismatch";
  let data = per_step_sizes t in
  let m = num_tasks t in
  let total = ref params.Sync_cost.w in
  for i = 0 to t.n - 1 do
    let hyper = ref 0 and reconf = ref params.Sync_cost.pub in
    for j = 0 to m - 1 do
      let sizes, breaks = data.(j) in
      (if breaks.(i) then
         match params.Sync_cost.hyper with
         | Sync_cost.Task_parallel -> hyper := max !hyper v.(j)
         | Sync_cost.Task_sequential -> hyper := !hyper + v.(j));
      match params.Sync_cost.reconf with
      | Sync_cost.Task_parallel -> reconf := max !reconf sizes.(i)
      | Sync_cost.Task_sequential -> reconf := !reconf + sizes.(i)
    done;
    total := !total + !hyper + !reconf
  done;
  !total

let cost_changeover t ~v ~w =
  if Array.length v <> num_tasks t then invalid_arg "Plan.cost_changeover: |v| mismatch";
  let m = num_tasks t in
  (* Per-step hyper costs including the |h Δ h'| term. *)
  let hyper_at = Array.make t.n 0 in
  let sizes = Array.init m (fun _ -> Array.make t.n 0) in
  Array.iteri
    (fun j segs ->
      let width = if Array.length segs = 0 then 0 else Bitset.width segs.(0).hc in
      let prev = ref (Bitset.create width) in
      Array.iter
        (fun s ->
          let change = Hypercontext.changeover !prev s.hc in
          hyper_at.(s.lo) <- max hyper_at.(s.lo) (v.(j) + change);
          prev := s.hc;
          let c = Hypercontext.cost s.hc in
          for i = s.lo to s.hi do
            sizes.(j).(i) <- c
          done)
        segs)
    t.segs;
  let total = ref w in
  for i = 0 to t.n - 1 do
    let reconf = ref 0 in
    for j = 0 to m - 1 do
      reconf := max !reconf sizes.(j).(i)
    done;
    total := !total + hyper_at.(i) + !reconf
  done;
  !total

let with_segment t j k hc =
  let segs = Array.map Array.copy t.segs in
  if j < 0 || j >= num_tasks t then invalid_arg "Plan.with_segment: task";
  if k < 0 || k >= Array.length segs.(j) then invalid_arg "Plan.with_segment: segment";
  segs.(j).(k) <- { (segs.(j).(k)) with hc };
  { t with segs }
