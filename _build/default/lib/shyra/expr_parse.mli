(** Parsing boolean expressions from text.

    Grammar (precedence low → high, all binary operators
    left-associative):

    {v
    expr   ::= xor ( '|' xor )*
    xor    ::= conj ( '^' conj )*
    conj   ::= unary ( '&' unary )*
    unary  ::= '!' unary | '(' expr ')' | '0' | '1' | ident
    ident  ::= [A-Za-z_][A-Za-z0-9_.]*
    v}

    Whitespace is free; ['#'] starts a comment to end of line. *)

(** [parse s] — [Error msg] has a character position. *)
val parse : string -> (Expr.t, string) result

(** [parse_exn s] raises [Failure]. *)
val parse_exn : string -> Expr.t

(** [print e] renders with minimal parentheses; [parse (print e)]
    re-reads to a semantically equal expression (tested). *)
val print : Expr.t -> string
