let full_adder_cycle k =
  Asm.cycle ~lut1:Lut.xor3 ~lut2:Lut.maj3
    ~sels:[ (0, k); (1, 4 + k); (2, 8); (3, k); (4, 4 + k); (5, 8) ]
    ~routes:[ (0, Some k); (1, Some 8) ]
    (Printf.sprintf "add%d" k)

let build () =
  Asm.assemble (List.concat_map full_adder_cycle [ 0; 1; 2; 3 ])

let initial_state ~a ~b =
  if a < 0 || a > 15 || b < 0 || b > 15 then
    invalid_arg "Serial_adder: operands must be 4-bit values";
  let s = Machine.create () in
  let s = Machine.write_nibble s 0 a in
  Machine.write_nibble s 4 b

let run ~a ~b =
  let final = Program.run (build ()) (initial_state ~a ~b) in
  (Machine.read_nibble final 0, Machine.get final 8)

let sum_program values =
  match values with
  | [] -> invalid_arg "Serial_adder.sum_program: empty list"
  | first :: rest ->
      let prog = build () in
      let state = ref (initial_state ~a:first ~b:0) in
      let total = ref (Program.of_steps []) in
      List.iter
        (fun b ->
          (* Host I/O between additions: load the next operand, clear
             the carry. *)
          state := Machine.write_nibble !state 4 b;
          state := Machine.set !state 8 false;
          state := Program.run prog !state;
          total := Program.append !total prog)
        (0 :: rest);
      (!total, Machine.read_nibble !state 0)
