(** A tiny assembler for SHyRA programs.

    Instructions mutate a pending configuration; [Commit] emits it as
    the next cycle.  Fields that no instruction touched {e hold their
    previous value} — exactly the property that makes real
    reconfiguration traces sparse and hyperreconfiguration profitable. *)

type instr =
  | Lut1 of Lut.t  (** load LUT1's truth table *)
  | Lut2 of Lut.t  (** load LUT2's truth table *)
  | Sel of int * int  (** [Sel (line, reg)]: MUX line 0..5 reads register [reg] *)
  | Route of int * int option
      (** [Route (line, Some reg)]: DeMUX line 0..1 writes [reg];
          [None] discards the LUT output *)
  | Commit of string  (** end the cycle, with a label *)

(** [assemble ?start instrs] produces the program.  [start] is the
    configuration in force before the first instruction (default
    {!Config.power_on}).  Raises [Invalid_argument] on bad field
    values, on conflicting DeMUX targets at a [Commit], or on trailing
    non-committed instructions. *)
val assemble : ?start:Config.t -> instr list -> Program.t

(** [cycle ?lut1 ?lut2 ?sels ?routes label] is sugar for one cycle's
    worth of instructions followed by [Commit label]. *)
val cycle :
  ?lut1:Lut.t ->
  ?lut2:Lut.t ->
  ?sels:(int * int) list ->
  ?routes:(int * int option) list ->
  string ->
  instr list
