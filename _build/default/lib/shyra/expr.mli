(** A boolean-expression compiler for SHyRA.

    The paper's test application was "time partitioned" by hand: the
    counter's logic was cut into cycles of at most two LUT evaluations.
    This module automates that step for arbitrary boolean expressions:

    + constant folding and identity simplification ({!simplify});
    + common-subexpression elimination by hash-consing;
    + LUT-3 technology mapping: single-use subexpressions are fused
      into their consumer whenever the combined function has at most
      three distinct leaf operands (e.g. [acc AND (a XNOR b)] becomes
      one LUT — the hand-written counter's EQACC table), with the
      fused truth table computed by tabulation;
    + list scheduling of the operation DAG, two LUT slots per cycle
      (paired operations read the pre-cycle register file, so any two
      ready operations may share a cycle);
    + register allocation over the 10-entry register file with liveness
      (a register is reclaimed after its value's last use; allocation
      may reuse an operand's register for the result within the same
      cycle thanks to read-before-write semantics).

    The emitted {!Program.t} is a genuine reconfiguration workload:
    every cycle reloads LUT tables, selects and routes, so compiled
    expression batches feed the hyperreconfiguration benches. *)

type t =
  | Const of bool
  | Input of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

(** Convenience constructors. *)
val ( &&& ) : t -> t -> t

val ( ||| ) : t -> t -> t
val ( ^^^ ) : t -> t -> t
val not_ : t -> t
val var : string -> t

(** [eval env e] — reference semantics; [env] maps input names (raises
    [Not_found] on unbound names). *)
val eval : (string -> bool) -> t -> bool

(** [simplify e] — constant folding and involution/identity rules
    (¬¬x = x, x∧⊤ = x, x⊕⊥ = x, …).  Semantics-preserving (tested);
    applied automatically by {!compile}, exposed for inspection. *)
val simplify : t -> t

(** [inputs e] — the distinct input names, in first-occurrence order. *)
val inputs : t -> string list

exception Out_of_registers

(** Compilation result: run [program] after host-loading each input
    into its register per [input_regs]; the value ends in register
    [result]. *)
type compiled = {
  program : Program.t;
  result : int;
  input_regs : (string * int) list;
  ops : int;  (** LUT operations after CSE *)
}

(** [compile e] — raises {!Out_of_registers} when more than 10 values
    are live at once, and [Invalid_argument] on more than 10 distinct
    inputs. *)
val compile : t -> compiled

(** Joint compilation of several outputs: subexpressions shared across
    outputs (a ripple adder's carry chain, a comparator's partial
    equalities) are computed once, and all results are live at the end
    in [results] (one register per output, in order). *)
type compiled_many = {
  many_program : Program.t;
  results : int list;
  many_input_regs : (string * int) list;
  many_ops : int;
}

(** [compile_many es] — same failure modes as {!compile}; additionally
    all outputs stay live simultaneously, so register pressure is
    higher. *)
val compile_many : t list -> compiled_many

(** [run_many es ~env] — compile jointly, execute, read every result. *)
val run_many : t list -> env:(string * bool) list -> bool list

(** [run e ~env] — compile, load inputs, execute, read the result
    (test/demo convenience). *)
val run : t -> env:(string * bool) list -> bool

(** [random rng ~inputs ~depth] — a random expression over the given
    input names (test/workload generator). *)
val random : Hr_util.Rng.t -> inputs:string list -> depth:int -> t
