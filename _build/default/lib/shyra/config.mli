(** The 48-bit SHyRA configuration word.

    SHyRA (paper Fig. 1) has four reconfigurable units totalling 48
    configuration bits — exactly the 48 switches of the paper's §6
    MT-Switch analysis:

    {v
    bits  0..7   LUT1 truth table                    (task T1, l1 = 8)
    bits  8..15  LUT2 truth table                    (task T2, l2 = 8)
    bits 16..23  DeMUX: 2 × 4-bit write target       (task T3, l3 = 8)
    bits 24..47  MUX:   6 × 4-bit register select    (task T4, l4 = 24)
    v}

    MUX lines 0–2 feed LUT1's inputs, lines 3–5 feed LUT2's.  A DeMUX
    target of {!no_write} (0xF) discards the LUT output; otherwise it
    names the register (0–9) to overwrite. *)

type t = {
  lut1 : Lut.t;
  lut2 : Lut.t;
  mux : int array;  (** 6 register selects, each 0..9 *)
  demux : int array;  (** 2 write targets, each 0..9 or {!no_write} *)
}

(** Number of registers in the register file. *)
val num_registers : int

(** Number of configuration bits (48). *)
val width : int

(** DeMUX code for "discard the LUT output" (0xF). *)
val no_write : int

(** [make ~lut1 ~lut2 ~mux ~demux] validates field ranges and that the
    two DeMUX targets are distinct unless discarded (simultaneous
    writes to one register are undefined on the hardware). *)
val make : lut1:Lut.t -> lut2:Lut.t -> mux:int array -> demux:int array -> t

(** [power_on] is the reset configuration: both LUTs constant 0, all
    MUX lines selecting register 0, both DeMUX lines discarding. *)
val power_on : t

(** [space] is the 48-switch universe with per-bit names
    ("lut1.0" … "mux5.3"). *)
val space : Hr_core.Switch_space.t

(** [encode c] is the 48-bit configuration as a bitset over
    {!space}. *)
val encode : t -> Hr_util.Bitset.t

(** [decode bits] inverts {!encode}.  Raises [Invalid_argument] when
    the bits decode to out-of-range fields. *)
val decode : Hr_util.Bitset.t -> t

(** [diff prev next] is the set of configuration bits that must be
    rewritten to go from [prev] to [next] — the context requirement of
    that reconfiguration step under the paper's switch model. *)
val diff : t -> t -> Hr_util.Bitset.t

(** [field_diff prev next] is the coarser field-granular requirement:
    whenever any bit of a field (a LUT table, one MUX select, one DeMUX
    target) changes, the whole field must be rewritten.  This matches
    architectures whose reconfiguration port writes whole configuration
    words, and is the primary trace-extraction mode of the §6
    reproduction. *)
val field_diff : t -> t -> Hr_util.Bitset.t

(** [in_use c] is the set of configuration bits belonging to fields
    that affect behaviour in [c]: all LUT bits of LUTs whose output is
    written somewhere, the MUX selects feeding those LUTs, and the
    DeMUX fields.  The alternative, coarser trace-extraction mode. *)
val in_use : t -> Hr_util.Bitset.t

(** [equal a b] is structural equality. *)
val equal : t -> t -> bool

(** [pp] prints a compact one-line description. *)
val pp : Format.formatter -> t -> unit
