let step_cycles = 3

let step_instrs i =
  Asm.cycle ~lut1:Lut.xor01 ~lut2:Lut.buf0
    ~sels:[ (0, 3); (1, 2); (3, 2) ]
    ~routes:[ (0, Some 8); (1, Some 3) ]
    (Printf.sprintf "fb%d" i)
  @ Asm.cycle ~lut1:Lut.buf0 ~sels:[ (0, 1); (3, 1) ]
      ~routes:[ (0, Some 2); (1, None) ]
      (Printf.sprintf "sh2_%d" i)
    (* r0 ← feedback (from r8) and r1 ← old r0 in the same cycle. *)
  @ Asm.cycle ~sels:[ (0, 8); (3, 0) ] ~routes:[ (0, Some 0); (1, Some 1) ]
      (Printf.sprintf "sh01_%d" i)

let build ~steps =
  if steps < 0 then invalid_arg "Lfsr.build: negative step count";
  Asm.assemble (List.concat_map step_instrs (List.init steps Fun.id))

let check_seed seed =
  if seed <= 0 || seed > 15 then
    invalid_arg "Lfsr: seed must be a non-zero 4-bit value"

let run ~seed ~steps =
  check_seed seed;
  let s = Machine.write_nibble (Machine.create ()) 0 seed in
  Machine.read_nibble (Program.run (build ~steps) s) 0

let sequence ~seed ~steps =
  check_seed seed;
  let prog = build ~steps:1 in
  let rec go s k acc =
    if k = 0 then List.rev acc
    else
      let s' = Program.run prog s in
      go s' (k - 1) (Machine.read_nibble s' 0 :: acc)
  in
  go (Machine.write_nibble (Machine.create ()) 0 seed) steps []
