(** Multi-bit words over {!Expr} — combinational arithmetic for the
    expression compiler.

    A word is an LSB-first vector of boolean expressions.  The
    constructors build the standard combinational circuits (ripple
    adder, equality, unsigned comparison, multiplexer); {!eval} gives
    the reference integer semantics and {!compile_bit} lowers one
    output bit to a SHyRA program via {!Expr.compile} (SHyRA writes at
    most two registers per cycle, so multi-output circuits are compiled
    output-by-output, exactly like the paper's time-partitioned
    designs). *)

type t = Expr.t array

(** [input name ~bits] — variables [name.0 … name.(bits-1)]. *)
val input : string -> bits:int -> t

(** [const ~bits v] — [v] truncated to [bits] bits. *)
val const : bits:int -> int -> t

(** [width w]. *)
val width : t -> int

(** Bitwise operators (equal widths required; raise
    [Invalid_argument] otherwise). *)
val lognot : t -> t

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

(** [add a b] — ripple-carry sum modulo 2^width. *)
val add : t -> t -> t

(** [succ w] — increment modulo 2^width (the counter's step). *)
val succ : t -> t

(** [equal a b] — the equality predicate as one expression. *)
val equal : t -> t -> Expr.t

(** [less_than a b] — unsigned [a < b]. *)
val less_than : t -> t -> Expr.t

(** [mux sel ~then_ ~else_] — bitwise select. *)
val mux : Expr.t -> then_:t -> else_:t -> t

(** [eval env w] — the word's integer value under [env]. *)
val eval : (string -> bool) -> t -> int

(** [bindings name ~bits v] — the environment entries loading integer
    [v] into {!input}[ name ~bits]. *)
val bindings : string -> bits:int -> int -> (string * bool) list

(** [compile_bit w k] — lower output bit [k]. *)
val compile_bit : t -> int -> Expr.compiled

(** [compile w] — lower the whole word jointly: shared structure
    (e.g. the ripple-carry chain) is computed once, and all output
    bits are live at the end ([Expr.compiled_many.results], LSB
    first). *)
val compile : t -> Expr.compiled_many

(** [run w ~env] — compile jointly, execute, read the integer value. *)
val run : t -> env:(string * bool) list -> int
