type state = bool array (* length 10, index = register *)

let create () = Array.make Config.num_registers false

let of_bits regs =
  if Array.length regs <> Config.num_registers then
    invalid_arg "Machine.of_bits: need exactly 10 registers";
  Array.copy regs

let registers s = Array.copy s

let get s r =
  if r < 0 || r >= Config.num_registers then invalid_arg "Machine.get: bad register";
  s.(r)

let set s r b =
  if r < 0 || r >= Config.num_registers then invalid_arg "Machine.set: bad register";
  let s' = Array.copy s in
  s'.(r) <- b;
  s'

let read_nibble s r0 =
  if r0 < 0 || r0 + 3 >= Config.num_registers then
    invalid_arg "Machine.read_nibble: range";
  let bit i = if s.(r0 + i) then 1 lsl i else 0 in
  bit 0 lor bit 1 lor bit 2 lor bit 3

let write_nibble s r0 v =
  if r0 < 0 || r0 + 3 >= Config.num_registers then
    invalid_arg "Machine.write_nibble: range";
  if v < 0 || v > 15 then invalid_arg "Machine.write_nibble: not a nibble";
  let s' = Array.copy s in
  for i = 0 to 3 do
    s'.(r0 + i) <- v land (1 lsl i) <> 0
  done;
  s'

let step (cfg : Config.t) s =
  let sel line = s.(cfg.Config.mux.(line)) in
  let out1 = Lut.eval cfg.Config.lut1 (sel 0) (sel 1) (sel 2) in
  let out2 = Lut.eval cfg.Config.lut2 (sel 3) (sel 4) (sel 5) in
  let s' = Array.copy s in
  if cfg.Config.demux.(0) <> Config.no_write then s'.(cfg.Config.demux.(0)) <- out1;
  if cfg.Config.demux.(1) <> Config.no_write then s'.(cfg.Config.demux.(1)) <- out2;
  s'

let run cfgs s = List.fold_left (fun st cfg -> step cfg st) s cfgs

let pp ppf s =
  Format.pp_print_string ppf "r0..r9=";
  Array.iter (fun b -> Format.pp_print_char ppf (if b then '1' else '0')) s
