(** Rule 90 elementary cellular automaton on SHyRA.

    Eight cells live in r0..r7 with zero boundary conditions; one CA
    step computes c_i' = c_{i-1} ⊕ c_{i+1} for all cells.  Since both
    LUT outputs per cycle are the only compute resources and cells are
    updated in place, the implementation walks the row left to right
    keeping the {e old} value of the previous cell in the scratch
    registers r8/r9 (alternating), taking 8 cycles per CA step.

    The resulting reconfiguration trace is long and highly regular —
    the periodic-phase shape on which fixed-period hyperreconfiguration
    heuristics are near-optimal, complementing the counter's
    irregular two-phase structure in the benches. *)

(** [step_cycles] is 8. *)
val step_cycles : int

(** [build ~steps] is the program performing [steps] CA steps. *)
val build : steps:int -> Program.t

(** [run ~cells ~steps] executes from the 8-bit row [cells] and returns
    the final row.  Raises [Invalid_argument] unless
    [0 ≤ cells ≤ 0xFF]. *)
val run : cells:int -> steps:int -> int

(** [reference ~cells ~steps] is the pure-software Rule 90 used by the
    test suite. *)
val reference : cells:int -> steps:int -> int
