type instr =
  | Lut1 of Lut.t
  | Lut2 of Lut.t
  | Sel of int * int
  | Route of int * int option
  | Commit of string

type pending = {
  lut1 : Lut.t;
  lut2 : Lut.t;
  mux : int array;
  demux : int array;
}

let assemble ?(start = Config.power_on) instrs =
  let pending =
    ref
      {
        lut1 = start.Config.lut1;
        lut2 = start.Config.lut2;
        mux = Array.copy start.Config.mux;
        demux = Array.copy start.Config.demux;
      }
  in
  let dirty = ref false in
  let out = ref [] in
  let apply = function
    | Lut1 t ->
        pending := { !pending with lut1 = t };
        dirty := true
    | Lut2 t ->
        pending := { !pending with lut2 = t };
        dirty := true
    | Sel (line, reg) ->
        if line < 0 || line > 5 then invalid_arg "Asm: MUX line out of range";
        let mux = Array.copy !pending.mux in
        mux.(line) <- reg;
        pending := { !pending with mux };
        dirty := true
    | Route (line, target) ->
        if line < 0 || line > 1 then invalid_arg "Asm: DeMUX line out of range";
        let demux = Array.copy !pending.demux in
        demux.(line) <- Option.value target ~default:Config.no_write;
        pending := { !pending with demux };
        dirty := true
    | Commit label ->
        let cfg =
          Config.make ~lut1:!pending.lut1 ~lut2:!pending.lut2 ~mux:!pending.mux
            ~demux:!pending.demux
        in
        out := { Program.cfg; label } :: !out;
        dirty := false
  in
  List.iter apply instrs;
  if !dirty then invalid_arg "Asm.assemble: trailing instructions without Commit";
  Program.of_steps (List.rev !out)

let cycle ?lut1 ?lut2 ?(sels = []) ?(routes = []) label =
  let opt f = function Some x -> [ f x ] | None -> [] in
  opt (fun t -> Lut1 t) lut1
  @ opt (fun t -> Lut2 t) lut2
  @ List.map (fun (line, reg) -> Sel (line, reg)) sels
  @ List.map (fun (line, target) -> Route (line, target)) routes
  @ [ Commit label ]
