(** Cycle-accurate SHyRA simulator.

    One machine cycle (after the cycle's reconfiguration): the MUX
    reads the six selected registers, both LUTs evaluate
    combinationally, and the DeMUX writes the two outputs back —
    reads-before-writes, so a LUT may overwrite one of its own
    inputs within the same cycle. *)

type state

(** [create ()] is a machine with all ten registers cleared. *)
val create : unit -> state

(** [of_bits regs] sets the register file (length 10 required). *)
val of_bits : bool array -> state

(** [registers s] is a copy of the register file. *)
val registers : state -> bool array

(** [get s r] reads register [r] (0..9). *)
val get : state -> int -> bool

(** [set s r b] returns a state with register [r] set to [b] — host
    I/O, not something the fabric can do. *)
val set : state -> int -> bool -> state

(** [read_nibble s r0] reads registers [r0..r0+3] as a little-endian
    4-bit value. *)
val read_nibble : state -> int -> int

(** [write_nibble s r0 v] writes a 4-bit value into registers
    [r0..r0+3]. *)
val write_nibble : state -> int -> int -> state

(** [step cfg s] executes one cycle under configuration [cfg]. *)
val step : Config.t -> state -> state

(** [run cfgs s] folds {!step} over a configuration sequence. *)
val run : Config.t list -> state -> state

(** [pp] prints the register file as ["r0..r9=0110…"] . *)
val pp : Format.formatter -> state -> unit
