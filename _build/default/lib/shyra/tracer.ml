type mode = Diff | Field_diff | In_use

let trace ?(mode = Field_diff) ?(initial = Config.power_on) program =
  let cfgs = Array.of_list (Program.configs program) in
  let diff_with f =
    Array.mapi (fun i cfg -> f (if i = 0 then initial else cfgs.(i - 1)) cfg) cfgs
  in
  let reqs =
    match mode with
    | Diff -> diff_with Config.diff
    | Field_diff -> diff_with Config.field_diff
    | In_use -> Array.map Config.in_use cfgs
  in
  Hr_core.Trace.make Config.space reqs
