type spec = {
  num_states : int;
  next : (Lut.t * Lut.t) array;
  accept : bool array;
}

let validate spec =
  if spec.num_states < 1 || spec.num_states > 4 then
    invalid_arg "Fsm: num_states must be 1..4";
  if
    Array.length spec.next <> spec.num_states
    || Array.length spec.accept <> spec.num_states
  then invalid_arg "Fsm: next/accept arity mismatch"

(* LUT input wiring: in0 = input bit (r9), in1 = state bit 0 (r0),
   in2 = state bit 1 (r1). *)
let next_state spec state input =
  let lut0, lut1 = spec.next.(state) in
  let s0 = state land 1 = 1 and s1 = state land 2 = 2 in
  let b0 = Lut.eval lut0 input s0 s1 and b1 = Lut.eval lut1 input s0 s1 in
  let s = (if b0 then 1 else 0) lor if b1 then 2 else 0 in
  if s >= spec.num_states then
    invalid_arg (Printf.sprintf "Fsm: transition to state %d out of range" s);
  s

let reference spec inputs =
  validate spec;
  let rec go state = function
    | [] -> []
    | i :: rest ->
        let state' = next_state spec state i in
        state' :: go state' rest
  in
  go 0 inputs

let step_instrs spec ~first state =
  let lut0, lut1 = spec.next.(state) in
  let wiring =
    if first then
      [
        Asm.Sel (0, 9); Asm.Sel (1, 0); Asm.Sel (2, 1);
        Asm.Sel (3, 9); Asm.Sel (4, 0); Asm.Sel (5, 1);
        Asm.Route (0, Some 0); Asm.Route (1, Some 1);
      ]
    else []
  in
  wiring @ [ Asm.Lut1 lut0; Asm.Lut2 lut1; Asm.Commit (Printf.sprintf "s%d" state) ]

let run spec inputs =
  validate spec;
  let state = ref (Machine.create ()) in
  let current_cfg = ref Config.power_on in
  let chunks = ref [] in
  let accepts = ref [] in
  let fsm_state = ref 0 in
  List.iteri
    (fun idx input ->
      (* The controller reads the FSM state and reconfigures the LUTs to
         that state's transition row — self-reconfiguration. *)
      let instrs = step_instrs spec ~first:(idx = 0) !fsm_state in
      let prog = Asm.assemble ~start:!current_cfg instrs in
      (match List.rev (Program.configs prog) with
      | last :: _ -> current_cfg := last
      | [] -> ());
      state := Machine.set !state 9 input;
      state := Program.run prog !state;
      chunks := prog :: !chunks;
      let s =
        (if Machine.get !state 0 then 1 else 0)
        lor if Machine.get !state 1 then 2 else 0
      in
      if s >= spec.num_states then
        invalid_arg (Printf.sprintf "Fsm: transition to state %d out of range" s);
      fsm_state := s;
      accepts := spec.accept.(s) :: !accepts)
    inputs;
  let program =
    List.fold_left (fun acc p -> Program.append p acc) (Program.of_steps []) !chunks
  in
  (program, List.rev !accepts)

let detector_101 =
  {
    num_states = 4;
    next =
      [|
        (Lut.buf0, Lut.zero);  (* state 0: 1 -> saw-1, 0 -> start *)
        (Lut.buf0, Lut.not0);  (* state 1: 1 -> saw-1, 0 -> saw-10 *)
        (Lut.buf0, Lut.buf0);  (* state 2: 1 -> accept, 0 -> start *)
        (Lut.buf0, Lut.not0);  (* state 3: like state 1 *)
      |];
    accept = [| false; false; false; true |];
  }

let parity_fsm =
  {
    num_states = 2;
    next = [| (Lut.xor01, Lut.zero); (Lut.xor01, Lut.zero) |];
    accept = [| false; true |];
  }
