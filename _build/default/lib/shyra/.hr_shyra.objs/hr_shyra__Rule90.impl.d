lib/shyra/rule90.ml: Asm Fun List Lut Machine Printf Program
