lib/shyra/fsm.ml: Array Asm Config List Lut Machine Printf Program
