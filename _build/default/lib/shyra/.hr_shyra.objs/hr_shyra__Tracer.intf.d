lib/shyra/tracer.mli: Config Hr_core Program
