lib/shyra/word.ml: Array Expr List Printf
