lib/shyra/expr_parse.mli: Expr
