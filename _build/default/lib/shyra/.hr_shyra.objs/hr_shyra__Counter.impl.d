lib/shyra/counter.ml: Asm Config List Lut Machine Program
