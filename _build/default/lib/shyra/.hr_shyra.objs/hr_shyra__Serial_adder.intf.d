lib/shyra/serial_adder.mli: Machine Program
