lib/shyra/word.mli: Expr
