lib/shyra/expr.ml: Array Asm Config Hashtbl Hr_util List Lut Machine Printf Program
