lib/shyra/gray.ml: Asm Lut Machine Program
