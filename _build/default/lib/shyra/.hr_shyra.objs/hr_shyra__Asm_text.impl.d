lib/shyra/asm_text.ml: Asm Fun List Lut Printf String
