lib/shyra/serial_adder.ml: Asm List Lut Machine Printf Program
