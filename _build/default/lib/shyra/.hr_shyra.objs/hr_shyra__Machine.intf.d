lib/shyra/machine.mli: Config Format
