lib/shyra/counter_compiled.ml: Expr List Machine Program String Word
