lib/shyra/config.ml: Array Format Hr_core Hr_util List Lut Printf
