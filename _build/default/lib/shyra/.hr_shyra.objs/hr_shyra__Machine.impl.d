lib/shyra/machine.ml: Array Config Format List Lut
