lib/shyra/lut.ml: List Printf
