lib/shyra/tasks.ml: Array Config Hr_core Hr_util List
