lib/shyra/rule90.mli: Program
