lib/shyra/tasks.mli: Hr_core Hr_util
