lib/shyra/duo.ml: Array Hr_core Hr_util Tracer
