lib/shyra/config.mli: Format Hr_core Hr_util Lut
