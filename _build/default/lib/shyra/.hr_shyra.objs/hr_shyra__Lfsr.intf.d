lib/shyra/lfsr.mli: Program
