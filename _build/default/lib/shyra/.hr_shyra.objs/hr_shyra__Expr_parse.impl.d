lib/shyra/expr_parse.ml: Buffer Expr List Printf String
