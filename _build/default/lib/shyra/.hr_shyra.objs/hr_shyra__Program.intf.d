lib/shyra/program.mli: Config Machine
