lib/shyra/asm_text.mli: Asm
