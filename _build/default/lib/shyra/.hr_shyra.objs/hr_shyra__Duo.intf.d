lib/shyra/duo.mli: Hr_core Program Tracer
