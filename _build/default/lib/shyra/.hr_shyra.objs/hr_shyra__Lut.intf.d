lib/shyra/lut.mli:
