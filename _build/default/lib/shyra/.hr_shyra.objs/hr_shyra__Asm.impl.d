lib/shyra/asm.ml: Array Config List Lut Option Program
