lib/shyra/counter_compiled.mli: Program
