lib/shyra/lfsr.ml: Asm Fun List Lut Machine Printf Program
