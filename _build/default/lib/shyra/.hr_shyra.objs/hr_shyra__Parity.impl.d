lib/shyra/parity.ml: Asm Lut Machine Program
