lib/shyra/tracer.ml: Array Config Hr_core Program
