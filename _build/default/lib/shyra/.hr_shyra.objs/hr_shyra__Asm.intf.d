lib/shyra/asm.mli: Config Lut Program
