lib/shyra/expr.mli: Hr_util Program
