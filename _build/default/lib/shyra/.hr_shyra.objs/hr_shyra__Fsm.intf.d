lib/shyra/fsm.mli: Lut Program
