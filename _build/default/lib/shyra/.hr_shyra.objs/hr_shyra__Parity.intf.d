lib/shyra/parity.mli: Program
