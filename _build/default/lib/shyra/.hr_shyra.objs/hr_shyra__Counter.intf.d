lib/shyra/counter.mli: Machine Program
