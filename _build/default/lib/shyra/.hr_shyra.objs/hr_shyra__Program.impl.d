lib/shyra/program.ml: Array Config List Machine
