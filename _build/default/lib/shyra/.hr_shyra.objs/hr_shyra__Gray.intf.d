lib/shyra/gray.mli: Program
