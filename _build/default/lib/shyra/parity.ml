let build () =
  Asm.assemble
    (Asm.cycle ~lut1:Lut.xor3
       ~sels:[ (0, 0); (1, 1); (2, 2) ]
       ~routes:[ (0, Some 8); (1, None) ]
       "par0"
    @ Asm.cycle ~sels:[ (0, 3); (1, 4); (2, 8) ] "par1"
    @ Asm.cycle ~sels:[ (0, 5); (1, 6); (2, 8) ] "par2"
    @ Asm.cycle ~lut1:Lut.xor01 ~sels:[ (0, 7); (1, 8) ] "par3")

let run bits =
  if bits < 0 || bits > 0xFF then invalid_arg "Parity.run: not an 8-bit value";
  let s = Machine.create () in
  let s = Machine.write_nibble s 0 (bits land 0xF) in
  let s = Machine.write_nibble s 4 ((bits lsr 4) land 0xF) in
  Machine.get (Program.run (build ()) s) 8
