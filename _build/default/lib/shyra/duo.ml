module Core = Hr_core
module Bitset = Hr_util.Bitset

let pad trace ~to_len =
  let n = Core.Trace.length trace in
  if n >= to_len then trace
  else
    let space = Core.Trace.space trace in
    let empty = Core.Switch_space.empty space in
    let reqs =
      Array.init to_len (fun i -> if i < n then Core.Trace.req trace i else empty)
    in
    Core.Trace.make space reqs

let task_set ?mode (name_a, prog_a) (name_b, prog_b) =
  let ta = Tracer.trace ?mode prog_a and tb = Tracer.trace ?mode prog_b in
  let n = max (Core.Trace.length ta) (Core.Trace.length tb) in
  if n = 0 then invalid_arg "Duo.task_set: both programs are empty";
  Core.Task_set.make
    [|
      Core.Task_set.task ~name:name_a (pad ta ~to_len:n);
      Core.Task_set.task ~name:name_b (pad tb ~to_len:n);
    |]

let oracle ?mode a b = Core.Interval_cost.of_task_set (task_set ?mode a b)
