let build () =
  Asm.assemble
    (Asm.cycle ~lut1:Lut.xor01 ~lut2:Lut.xor01
       ~sels:[ (0, 0); (1, 1); (3, 1); (4, 2) ]
       ~routes:[ (0, Some 4); (1, Some 5) ]
       "gray01"
    @ Asm.cycle ~lut2:Lut.buf0
        ~sels:[ (0, 2); (1, 3); (3, 3) ]
        ~routes:[ (0, Some 6); (1, Some 7) ]
        "gray23")

let run v =
  if v < 0 || v > 15 then invalid_arg "Gray.run: not a 4-bit value";
  let s = Machine.write_nibble (Machine.create ()) 0 v in
  Machine.read_nibble (Program.run (build ()) s) 4
