(** Textual SHyRA assembly.

    A small line-oriented surface syntax for {!Asm} programs so that
    programs can live in files and be run by [bin/shyra_run]:

    {v
    # increment bit 0
    lut1 NOT0        ; load LUT1's table (name or 0xNN)
    lut2 BUF0
    sel 0 r0         ; MUX line 0 reads register r0
    sel 3 r0
    route 0 r0       ; DeMUX line 0 writes r0
    route 1 r8
    commit inc0      ; end the cycle, labelled
    v}

    ['#'] and [';'] start comments.  Table operands are the mnemonic
    names of {!Lut} ([NOT0], [XOR01], …) or hexadecimal literals
    ([0x96]).  Register operands are [r0]..[r9]; [route <line> -]
    discards the LUT output. *)

(** [parse s] parses a whole source file into instructions.  Returns
    [Error msg] with a line number on the first syntax error. *)
val parse : string -> (Asm.instr list, string) result

(** [parse_exn s] raises [Failure] instead. *)
val parse_exn : string -> Asm.instr list

(** [print instrs] renders instructions back to the surface syntax;
    [parse (print p) = Ok p] (tested). *)
val print : Asm.instr list -> string

(** [load path] parses a file. *)
val load : string -> (Asm.instr list, string) result
