module Bitset = Hr_util.Bitset

type t = { lut1 : Lut.t; lut2 : Lut.t; mux : int array; demux : int array }

let num_registers = 10
let width = 48
let no_write = 0xF

let make ~lut1 ~lut2 ~mux ~demux =
  if Array.length mux <> 6 then invalid_arg "Config.make: mux must have 6 lines";
  if Array.length demux <> 2 then invalid_arg "Config.make: demux must have 2 lines";
  Array.iter
    (fun s ->
      if s < 0 || s >= num_registers then
        invalid_arg (Printf.sprintf "Config.make: mux select %d out of range" s))
    mux;
  Array.iter
    (fun d ->
      if d <> no_write && (d < 0 || d >= num_registers) then
        invalid_arg (Printf.sprintf "Config.make: demux target %d out of range" d))
    demux;
  if demux.(0) <> no_write && demux.(0) = demux.(1) then
    invalid_arg "Config.make: both DeMUX lines write the same register";
  { lut1; lut2; mux = Array.copy mux; demux = Array.copy demux }

let power_on =
  {
    lut1 = Lut.zero;
    lut2 = Lut.zero;
    mux = Array.make 6 0;
    demux = Array.make 2 no_write;
  }

let space =
  let names = Array.make width "" in
  for b = 0 to 7 do
    names.(b) <- Printf.sprintf "lut1.%d" b;
    names.(8 + b) <- Printf.sprintf "lut2.%d" b
  done;
  for line = 0 to 1 do
    for b = 0 to 3 do
      names.(16 + (4 * line) + b) <- Printf.sprintf "demux%d.%d" line b
    done
  done;
  for line = 0 to 5 do
    for b = 0 to 3 do
      names.(24 + (4 * line) + b) <- Printf.sprintf "mux%d.%d" line b
    done
  done;
  Hr_core.Switch_space.make ~names width

let encode c =
  let bits = ref (Bitset.create width) in
  let put base nbits value =
    for b = 0 to nbits - 1 do
      if value land (1 lsl b) <> 0 then bits := Bitset.add !bits (base + b)
    done
  in
  put 0 8 (Lut.table c.lut1);
  put 8 8 (Lut.table c.lut2);
  put 16 4 c.demux.(0);
  put 20 4 c.demux.(1);
  for line = 0 to 5 do
    put (24 + (4 * line)) 4 c.mux.(line)
  done;
  !bits

let decode bits =
  if Bitset.width bits <> width then invalid_arg "Config.decode: wrong width";
  let get base nbits =
    let v = ref 0 in
    for b = 0 to nbits - 1 do
      if Bitset.mem bits (base + b) then v := !v lor (1 lsl b)
    done;
    !v
  in
  make
    ~lut1:(Lut.of_table (get 0 8))
    ~lut2:(Lut.of_table (get 8 8))
    ~mux:(Array.init 6 (fun line -> get (24 + (4 * line)) 4))
    ~demux:[| get 16 4; get 20 4 |]

let diff prev next = Bitset.symdiff (encode prev) (encode next)

(* Field boundaries: (first bit, width). *)
let fields =
  [ (0, 8); (8, 8); (16, 4); (20, 4); (24, 4); (28, 4); (32, 4); (36, 4); (40, 4); (44, 4) ]

let field_diff prev next =
  let bitwise = diff prev next in
  List.fold_left
    (fun acc (base, nbits) ->
      let touched =
        let rec any b = b < nbits && (Bitset.mem bitwise (base + b) || any (b + 1)) in
        any 0
      in
      if touched then
        List.fold_left (fun acc b -> Bitset.add acc (base + b)) acc
          (List.init nbits (fun b -> b))
      else acc)
    (Bitset.create width) fields

let in_use c =
  let bits = ref (Bitset.create width) in
  let mark base nbits =
    for b = 0 to nbits - 1 do
      bits := Bitset.add !bits (base + b)
    done
  in
  mark 16 4;
  mark 20 4;
  if c.demux.(0) <> no_write then begin
    mark 0 8;
    for line = 0 to 2 do
      mark (24 + (4 * line)) 4
    done
  end;
  if c.demux.(1) <> no_write then begin
    mark 8 8;
    for line = 3 to 5 do
      mark (24 + (4 * line)) 4
    done
  end;
  !bits

let equal a b =
  Lut.table a.lut1 = Lut.table b.lut1
  && Lut.table a.lut2 = Lut.table b.lut2
  && a.mux = b.mux && a.demux = b.demux

let pp ppf c =
  let tgt d = if d = no_write then "-" else string_of_int d in
  Format.fprintf ppf "lut1=%s(%d,%d,%d)->%s lut2=%s(%d,%d,%d)->%s" (Lut.name c.lut1)
    c.mux.(0) c.mux.(1) c.mux.(2) (tgt c.demux.(0)) (Lut.name c.lut2) c.mux.(3)
    c.mux.(4) c.mux.(5) (tgt c.demux.(1))
