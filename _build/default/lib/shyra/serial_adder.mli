(** Bit-serial 4-bit adder on SHyRA.

    Computes r0..r3 := r0..r3 + r4..r7 (mod 16) with carry-out in r8,
    one full adder per cycle: LUT1 is the 3-input parity (sum bit) and
    LUT2 the 3-input majority (carry), both reading the same operand
    bits plus the running carry in r8.  The host must clear r8 before
    the program runs ({!initial_state} does). *)

(** [build ()] is the 4-cycle program. *)
val build : unit -> Program.t

(** [initial_state ~a ~b] loads the operands and clears the carry. *)
val initial_state : a:int -> b:int -> Machine.state

(** [run ~a ~b] executes one addition and returns (sum mod 16,
    carry-out). *)
val run : a:int -> b:int -> int * bool

(** [sum_program values] chains one {!build} program per addition of
    [values] (the host reloads r4..r7 between additions and clears the
    carry) and returns the concatenated program — after the first
    addition every further cycle is configuration-identical, giving the
    sparsest possible reconfiguration trace.  Raises on an empty
    list. *)
val sum_program : int list -> Program.t * int
