type result = {
  program : Program.t;
  iterations : int;
  final_value : int;
  cycles_per_compare : int;
  cycles_per_increment : int;
}

let build ?(init = 0) ~bound () =
  if init < 0 || init > 15 || bound < 0 || bound > 15 then
    invalid_arg "Counter_compiled: init and bound must be 4-bit values";
  let value = Word.input "v" ~bits:4 and bound_w = Word.input "b" ~bits:4 in
  let eq = Expr.compile (Word.equal value bound_w) in
  let inc = Word.compile (Word.succ value) in
  let load_word st regs v =
    List.fold_left
      (fun st (name, reg) ->
        let k = int_of_string (String.sub name (String.index name '.' + 1) 1) in
        Machine.set st reg (v land (1 lsl k) <> 0))
      st regs
  in
  let eq_v_regs = List.filter (fun (n, _) -> n.[0] = 'v') eq.Expr.input_regs in
  let eq_b_regs = List.filter (fun (n, _) -> n.[0] = 'b') eq.Expr.input_regs in
  let read_word st regs =
    List.fold_left
      (fun acc (k, reg) -> if Machine.get st reg then acc lor (1 lsl k) else acc)
      0
      (List.mapi (fun k reg -> (k, reg)) regs)
  in
  let chunks = ref [] in
  let rec loop v iterations =
    (* Compare phase: host loads value and bound, runs the comparator. *)
    let st = load_word (Machine.create ()) eq_v_regs v in
    let st = load_word st eq_b_regs bound in
    let st = Program.run eq.Expr.program st in
    chunks := eq.Expr.program :: !chunks;
    if Machine.get st eq.Expr.result then (v, iterations)
    else if iterations >= 16 then assert false
    else begin
      (* Increment phase: host loads the value, runs succ, reads it
         back. *)
      let st = load_word (Machine.create ()) inc.Expr.many_input_regs v in
      let st = Program.run inc.Expr.many_program st in
      chunks := inc.Expr.many_program :: !chunks;
      let v' = read_word st inc.Expr.results in
      loop v' (iterations + 1)
    end
  in
  let final_value, iterations = loop init 0 in
  let program =
    List.fold_left (fun acc p -> Program.append p acc) (Program.of_steps []) !chunks
  in
  {
    program;
    iterations;
    final_value;
    cycles_per_compare = Program.length eq.Expr.program;
    cycles_per_increment = Program.length inc.Expr.many_program;
  }
