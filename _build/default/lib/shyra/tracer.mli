(** Context-requirement extraction from SHyRA programs.

    The paper's §6 experiment traces "each reconfiguration step" of the
    counter run and analyzes the resulting sequence of n requirement
    sets under the MT-Switch cost model.  Three extraction modes, from
    finest to coarsest:

    - [Diff]: the requirement of step [i] is the set of configuration
      bits whose value changes entering cycle [i] — bit-granular
      reconfiguration;
    - [Field_diff] (the reproduction's primary mode): whole fields
      (a LUT table, one MUX select, one DeMUX target) whose content
      changes — word-granular reconfiguration ports;
    - [In_use]: all bits of fields that affect behaviour during the
      cycle (worst-case upper bound, per the paper's remark that
      data-dependent demands need worst-case requirements). *)

type mode = Diff | Field_diff | In_use

(** [trace ?mode ?initial program] extracts the requirement trace over
    {!Config.space}.  [initial] is the configuration in force before
    cycle 0 (default {!Config.power_on}); in the diff modes step 0's
    requirement is the diff against it. *)
val trace : ?mode:mode -> ?initial:Config.t -> Program.t -> Hr_core.Trace.t
