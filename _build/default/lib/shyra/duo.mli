(** Two applications running in parallel as a multi-task machine.

    The multi-task model's natural deployment: two independent SHyRA
    fabrics, one application each, planned as a fully synchronized
    two-task instance (each fabric's 48 configuration bits are that
    task's local switches, v = 48 per the special case).  The shorter
    program idles (empty requirements — an idle cycle rewrites
    nothing) until the longer one finishes. *)

(** [task_set ?mode (name_a, prog_a) (name_b, prog_b)] — the two-task
    instance. *)
val task_set :
  ?mode:Tracer.mode -> string * Program.t -> string * Program.t -> Hr_core.Task_set.t

(** [oracle ?mode a b] — its {!Hr_core.Interval_cost.t}. *)
val oracle :
  ?mode:Tracer.mode ->
  string * Program.t ->
  string * Program.t ->
  Hr_core.Interval_cost.t
