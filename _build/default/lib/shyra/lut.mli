(** Three-input look-up tables.

    A LUT is an 8-bit truth table: output bit [i] of the table is the
    LUT output for the input combination [i = in0 + 2·in1 + 4·in2].
    SHyRA has two of them (Fig. 1). *)

type t = private int

(** [of_table bits] validates [0 ≤ bits ≤ 0xFF]. *)
val of_table : int -> t

(** [table t] is the raw 8-bit table. *)
val table : t -> int

(** [eval t in0 in1 in2] applies the LUT. *)
val eval : t -> bool -> bool -> bool -> bool

(** [of_fn f] tabulates an arbitrary boolean function of three
    inputs. *)
val of_fn : (bool -> bool -> bool -> bool) -> t

(** Common tables, all ignoring unused inputs:
    - [zero] / [one]: constants;
    - [buf0]: passes input 0;
    - [not0]: negates input 0;
    - [xor01], [and01], [or01], [xnor01]: two-input gates on
      inputs 0 and 1;
    - [xor3]: three-input parity (full-adder sum);
    - [maj3]: three-input majority (full-adder carry);
    - [eq_acc]: [in2 ∧ (in0 ≡ in1)] — the running-equality gate of the
      counter's comparison phase. *)
val zero : t

val one : t
val buf0 : t
val not0 : t
val xor01 : t
val and01 : t
val or01 : t
val xnor01 : t
val xor3 : t
val maj3 : t
val eq_acc : t

(** [name t] is a mnemonic for known tables ("XOR01", …) or ["0xNN"]. *)
val name : t -> string
