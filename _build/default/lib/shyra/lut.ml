type t = int

let of_table bits =
  if bits < 0 || bits > 0xFF then invalid_arg "Lut.of_table: not an 8-bit table";
  bits

let table t = t

let eval t in0 in1 in2 =
  let idx =
    (if in0 then 1 else 0) lor (if in1 then 2 else 0) lor if in2 then 4 else 0
  in
  (t lsr idx) land 1 = 1

let of_fn f =
  let bits = ref 0 in
  for idx = 0 to 7 do
    let b i = idx land (1 lsl i) <> 0 in
    if f (b 0) (b 1) (b 2) then bits := !bits lor (1 lsl idx)
  done;
  !bits

let zero = of_fn (fun _ _ _ -> false)
let one = of_fn (fun _ _ _ -> true)
let buf0 = of_fn (fun a _ _ -> a)
let not0 = of_fn (fun a _ _ -> not a)
let xor01 = of_fn (fun a b _ -> a <> b)
let and01 = of_fn (fun a b _ -> a && b)
let or01 = of_fn (fun a b _ -> a || b)
let xnor01 = of_fn (fun a b _ -> a = b)
let xor3 = of_fn (fun a b c -> (a <> b) <> c)
let maj3 = of_fn (fun a b c -> (a && b) || (a && c) || (b && c))
let eq_acc = of_fn (fun a b c -> c && a = b)

let name t =
  let known =
    [
      (zero, "ZERO"); (one, "ONE"); (buf0, "BUF0"); (not0, "NOT0");
      (xor01, "XOR01"); (and01, "AND01"); (or01, "OR01"); (xnor01, "XNOR01");
      (xor3, "XOR3"); (maj3, "MAJ3"); (eq_acc, "EQACC");
    ]
  in
  match List.assoc_opt t known with
  | Some n -> n
  | None -> Printf.sprintf "0x%02X" t
