type token = TId of string | TConst of bool | TNot | TAnd | TOr | TXor | TLparen | TRparen

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.'

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '#' ->
          let rec skip i = if i < n && s.[i] <> '\n' then skip (i + 1) else i in
          go (skip i) acc
      | '!' -> go (i + 1) ((i, TNot) :: acc)
      | '&' -> go (i + 1) ((i, TAnd) :: acc)
      | '|' -> go (i + 1) ((i, TOr) :: acc)
      | '^' -> go (i + 1) ((i, TXor) :: acc)
      | '(' -> go (i + 1) ((i, TLparen) :: acc)
      | ')' -> go (i + 1) ((i, TRparen) :: acc)
      | '0' -> go (i + 1) ((i, TConst false) :: acc)
      | '1' -> go (i + 1) ((i, TConst true) :: acc)
      | c when is_ident_start c ->
          let rec stop j = if j < n && is_ident_char s.[j] then stop (j + 1) else j in
          let j = stop i in
          go j ((i, TId (String.sub s i (j - i))) :: acc)
      | c -> Error (Printf.sprintf "position %d: unexpected character %C" i c)
  in
  go 0 []

let parse s =
  match tokenize s with
  | Error e -> Error e
  | Ok tokens -> (
      let rest = ref tokens in
      let peek () = match !rest with [] -> None | (_, t) :: _ -> Some t in
      let advance () = match !rest with [] -> () | _ :: r -> rest := r in
      let fail_at msg =
        match !rest with
        | [] -> Error (Printf.sprintf "at end of input: %s" msg)
        | (pos, _) :: _ -> Error (Printf.sprintf "position %d: %s" pos msg)
      in
      let rec expr () =
        match xor_level () with
        | Error e -> Error e
        | Ok left -> (
            match peek () with
            | Some TOr -> (
                advance ();
                match expr () with
                | Ok right -> Ok (Expr.Or (left, right))
                | Error e -> Error e)
            | _ -> Ok left)
      and xor_level () =
        match conj () with
        | Error e -> Error e
        | Ok left -> (
            match peek () with
            | Some TXor -> (
                advance ();
                match xor_level () with
                | Ok right -> Ok (Expr.Xor (left, right))
                | Error e -> Error e)
            | _ -> Ok left)
      and conj () =
        match unary () with
        | Error e -> Error e
        | Ok left -> (
            match peek () with
            | Some TAnd -> (
                advance ();
                match conj () with
                | Ok right -> Ok (Expr.And (left, right))
                | Error e -> Error e)
            | _ -> Ok left)
      and unary () =
        match peek () with
        | Some TNot -> (
            advance ();
            match unary () with Ok e -> Ok (Expr.Not e) | Error e -> Error e)
        | Some TLparen -> (
            advance ();
            match expr () with
            | Error e -> Error e
            | Ok e -> (
                match peek () with
                | Some TRparen ->
                    advance ();
                    Ok e
                | _ -> fail_at "expected ')'"))
        | Some (TConst b) ->
            advance ();
            Ok (Expr.Const b)
        | Some (TId name) ->
            advance ();
            Ok (Expr.Input name)
        | _ -> fail_at "expected an expression"
      in
      match expr () with
      | Error e -> Error e
      | Ok e -> if !rest = [] then Ok e else fail_at "trailing input")

let parse_exn s = match parse s with Ok e -> e | Error msg -> failwith msg

(* Precedence levels: Or = 0, Xor = 1, And = 2, unary = 3. *)
let print e =
  let buf = Buffer.create 64 in
  let rec go level e =
    let wrap needed body =
      if level > needed then begin
        Buffer.add_char buf '(';
        body ();
        Buffer.add_char buf ')'
      end
      else body ()
    in
    match e with
    | Expr.Const b -> Buffer.add_char buf (if b then '1' else '0')
    | Expr.Input s -> Buffer.add_string buf s
    | Expr.Not a ->
        Buffer.add_char buf '!';
        go 3 a
    | Expr.Or (a, b) ->
        wrap 0 (fun () ->
            go 1 a;
            Buffer.add_string buf " | ";
            go 0 b)
    | Expr.Xor (a, b) ->
        wrap 1 (fun () ->
            go 2 a;
            Buffer.add_string buf " ^ ";
            go 1 b)
    | Expr.And (a, b) ->
        wrap 2 (fun () ->
            go 3 a;
            Buffer.add_string buf " & ";
            go 2 b)
  in
  go 0 e;
  Buffer.contents buf
