module Bitset = Hr_util.Bitset
module Core = Hr_core

type part = { name : string; mask : Bitset.t }

let range lo hi = Bitset.of_list Config.width (List.init (hi - lo + 1) (fun k -> lo + k))

let four_tasks =
  [|
    { name = "LUT1"; mask = range 0 7 };
    { name = "LUT2"; mask = range 8 15 };
    { name = "DeMUX"; mask = range 16 23 };
    { name = "MUX"; mask = range 24 47 };
  |]

let single_task = [| { name = "ALL"; mask = Bitset.full Config.width } |]

let to_core parts =
  Array.map (fun p -> { Core.Task_split.name = p.name; mask = p.mask }) parts

let split trace parts =
  if Core.Switch_space.size (Core.Trace.space trace) <> Config.width then
    invalid_arg "Tasks.split: trace is not over the SHyRA configuration space";
  Core.Task_split.split trace (to_core parts)

let oracle trace parts = Core.Interval_cost.of_task_set (split trace parts)
