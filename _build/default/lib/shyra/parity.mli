(** 8-bit parity on SHyRA.

    Computes the parity of r0..r7 into r8 in 4 cycles using the
    3-input parity LUT as a folding accumulator. *)

(** [build ()] is the 4-cycle program. *)
val build : unit -> Program.t

(** [run bits] loads the 8-bit value into r0..r7, executes, and
    returns the parity. *)
val run : int -> bool
