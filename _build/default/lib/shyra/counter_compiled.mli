(** The paper's counter, built by the compiler instead of by hand.

    The §6 application — count from an initial 4-bit value to a bound —
    is reconstructed from {!Word} circuits: an equality comparator
    (value ≟ bound) and an incrementer ([Word.succ]), each jointly
    compiled once and re-executed every iteration with the host moving
    the result bits back into the value registers (the same
    host-orchestrated loop as the hand-written {!Counter}).  Comparing
    the two mappings' traces quantifies how far an automatic time
    partitioning lands from the hand-crafted one — the exact question
    the paper's unpublished n = 110 mapping leaves open. *)

type result = {
  program : Program.t;  (** all executed cycles *)
  iterations : int;
  final_value : int;
  cycles_per_compare : int;
  cycles_per_increment : int;
}

(** [build ?init ~bound ()] — same contract as {!Counter.build}. *)
val build : ?init:int -> bound:int -> unit -> result
