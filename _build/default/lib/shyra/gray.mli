(** Binary-to-Gray conversion on SHyRA.

    Converts the 4-bit binary value in r0..r3 into its Gray code in
    r4..r7 (g_k = b_k ⊕ b_{k+1}, g₃ = b₃) in 2 cycles — both LUTs
    compute one Gray bit per cycle. *)

(** [build ()] is the 2-cycle program. *)
val build : unit -> Program.t

(** [run v] converts a 4-bit value and returns its Gray code. *)
val run : int -> int
