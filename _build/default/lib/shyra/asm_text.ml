let lut_by_name =
  [
    ("ZERO", Lut.zero); ("ONE", Lut.one); ("BUF0", Lut.buf0); ("NOT0", Lut.not0);
    ("XOR01", Lut.xor01); ("AND01", Lut.and01); ("OR01", Lut.or01);
    ("XNOR01", Lut.xnor01); ("XOR3", Lut.xor3); ("MAJ3", Lut.maj3);
    ("EQACC", Lut.eq_acc);
  ]

let parse_lut tok =
  match List.assoc_opt (String.uppercase_ascii tok) lut_by_name with
  | Some l -> Ok l
  | None -> (
      match int_of_string_opt tok with
      | Some v when v >= 0 && v <= 0xFF -> Ok (Lut.of_table v)
      | _ -> Error (Printf.sprintf "unknown LUT table %S" tok))

let parse_reg tok =
  if String.length tok = 2 && tok.[0] = 'r' then
    match int_of_string_opt (String.sub tok 1 1) with
    | Some r when r >= 0 && r <= 9 -> Ok r
    | _ -> Error (Printf.sprintf "bad register %S" tok)
  else Error (Printf.sprintf "bad register %S" tok)

let parse_line no line =
  let line =
    let cut c s = match String.index_opt s c with Some i -> String.sub s 0 i | None -> s in
    cut '#' (cut ';' line)
  in
  let tokens =
    String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "")
  in
  let err msg = Error (Printf.sprintf "line %d: %s" no msg) in
  match tokens with
  | [] -> Ok None
  | [ "lut1"; t ] -> (
      match parse_lut t with Ok l -> Ok (Some (Asm.Lut1 l)) | Error e -> err e)
  | [ "lut2"; t ] -> (
      match parse_lut t with Ok l -> Ok (Some (Asm.Lut2 l)) | Error e -> err e)
  | [ "sel"; line_tok; reg_tok ] -> (
      match (int_of_string_opt line_tok, parse_reg reg_tok) with
      | Some l, Ok r when l >= 0 && l <= 5 -> Ok (Some (Asm.Sel (l, r)))
      | Some _, Ok _ -> err "MUX line must be 0..5"
      | None, _ -> err "bad MUX line"
      | _, Error e -> err e)
  | [ "route"; line_tok; "-" ] -> (
      match int_of_string_opt line_tok with
      | Some l when l >= 0 && l <= 1 -> Ok (Some (Asm.Route (l, None)))
      | _ -> err "DeMUX line must be 0..1")
  | [ "route"; line_tok; reg_tok ] -> (
      match (int_of_string_opt line_tok, parse_reg reg_tok) with
      | Some l, Ok r when l >= 0 && l <= 1 -> Ok (Some (Asm.Route (l, Some r)))
      | Some _, Ok _ -> err "DeMUX line must be 0..1"
      | None, _ -> err "bad DeMUX line"
      | _, Error e -> err e)
  | [ "commit" ] -> Ok (Some (Asm.Commit ""))
  | [ "commit"; label ] -> Ok (Some (Asm.Commit label))
  | cmd :: _ -> err (Printf.sprintf "unknown directive %S" cmd)

let parse s =
  let lines = String.split_on_char '\n' s in
  let rec go no acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line no line with
        | Ok None -> go (no + 1) acc rest
        | Ok (Some i) -> go (no + 1) (i :: acc) rest
        | Error e -> Error e)
  in
  go 1 [] lines

let parse_exn s = match parse s with Ok p -> p | Error e -> failwith e

let print instrs =
  let lut_name t =
    match List.find_opt (fun (_, l) -> Lut.table l = Lut.table t) lut_by_name with
    | Some (n, _) -> n
    | None -> Printf.sprintf "0x%02X" (Lut.table t)
  in
  let line = function
    | Asm.Lut1 t -> "lut1 " ^ lut_name t
    | Asm.Lut2 t -> "lut2 " ^ lut_name t
    | Asm.Sel (l, r) -> Printf.sprintf "sel %d r%d" l r
    | Asm.Route (l, None) -> Printf.sprintf "route %d -" l
    | Asm.Route (l, Some r) -> Printf.sprintf "route %d r%d" l r
    | Asm.Commit "" -> "commit"
    | Asm.Commit label -> "commit " ^ label
  in
  String.concat "\n" (List.map line instrs) ^ "\n"

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> parse (really_input_string ic (in_channel_length ic)))
