(** Task splits of the SHyRA configuration bits.

    The paper's §6 experiment compares the multi-task split — each of
    the four units is one task: T1 = LUT1 (l₁ = 8), T2 = LUT2 (l₂ = 8),
    T3 = DeMUX (l₃ = 8), T4 = MUX (l₄ = 24) — against the single-task
    split where all 48 bits form one task.  All 48 switches are local
    resources; the special-case local hyperreconfiguration costs are
    [v_j = l_j] (and [v = 48] for the single task). *)

(** One part of a split: a task name and its bit mask over
    {!Config.space}. *)
type part = { name : string; mask : Hr_util.Bitset.t }

(** The four-unit split, in paper order T1..T4. *)
val four_tasks : part array

(** The single-task split. *)
val single_task : part array

(** [split trace parts] projects a machine-wide trace (over
    {!Config.space}) into a fully synchronized {!Hr_core.Task_set.t}:
    each part gets its own local switch space (bits renumbered densely,
    names preserved) and [v = ] part size.  Raises [Invalid_argument]
    when the parts do not partition the 48 bits. *)
val split : Hr_core.Trace.t -> part array -> Hr_core.Task_set.t

(** [oracle trace parts] is [Interval_cost.of_task_set (split trace
    parts)]. *)
val oracle : Hr_core.Trace.t -> part array -> Hr_core.Interval_cost.t
