(** 4-bit maximal-length Fibonacci LFSR (x⁴ + x³ + 1) on SHyRA.

    State in r0..r3.  One shift step takes 3 cycles: compute the
    feedback r3 ⊕ r2 into the scratch register r8 while r3 already
    takes r2's value, shift the lower bits, then move the feedback into
    r0.  From any non-zero seed the sequence has period 15. *)

(** [step_cycles] is 3. *)
val step_cycles : int

(** [build ~steps] is the program performing [steps] shift steps. *)
val build : steps:int -> Program.t

(** [run ~seed ~steps] executes and returns the final 4-bit state.
    Raises [Invalid_argument] on a zero or out-of-range seed. *)
val run : seed:int -> steps:int -> int

(** [sequence ~seed ~steps] is every intermediate state (length
    [steps]). *)
val sequence : seed:int -> steps:int -> int list
