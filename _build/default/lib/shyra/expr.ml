type t =
  | Const of bool
  | Input of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let ( ^^^ ) a b = Xor (a, b)
let not_ a = Not a
let var s = Input s

let rec eval env = function
  | Const b -> b
  | Input s -> env s
  | Not a -> not (eval env a)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
  | Xor (a, b) -> eval env a <> eval env b

let inputs e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Const _ -> ()
    | Input s ->
        if not (Hashtbl.mem seen s) then begin
          Hashtbl.replace seen s ();
          out := s :: !out
        end
    | Not a -> go a
    | And (a, b) | Or (a, b) | Xor (a, b) ->
        go a;
        go b
  in
  go e;
  List.rev !out

let rec simplify e =
  match e with
  | Const _ | Input _ -> e
  | Not a -> (
      match simplify a with
      | Const b -> Const (not b)
      | Not inner -> inner
      | a' -> Not a')
  | And (a, b) -> (
      match (simplify a, simplify b) with
      | Const false, _ | _, Const false -> Const false
      | Const true, x | x, Const true -> x
      | a', b' -> And (a', b'))
  | Or (a, b) -> (
      match (simplify a, simplify b) with
      | Const true, _ | _, Const true -> Const true
      | Const false, x | x, Const false -> x
      | a', b' -> Or (a', b'))
  | Xor (a, b) -> (
      match (simplify a, simplify b) with
      | Const false, x | x, Const false -> x
      | Const true, x | x, Const true -> simplify (Not x)
      | a', b' -> Xor (a', b'))

exception Out_of_registers

(* ---- hash-consed DAG ---- *)

type node =
  | NConst of bool
  | NInput of string
  | NNot of int
  | NAnd of int * int
  | NOr of int * int
  | NXor of int * int

let build_dag exprs =
  let table : (node, int) Hashtbl.t = Hashtbl.create 64 in
  let nodes = ref [] in
  let count = ref 0 in
  let intern node =
    match Hashtbl.find_opt table node with
    | Some id -> id
    | None ->
        let id = !count in
        incr count;
        Hashtbl.replace table node id;
        nodes := node :: !nodes;
        id
  in
  let rec go = function
    | Const b -> intern (NConst b)
    | Input s -> intern (NInput s)
    | Not a -> intern (NNot (go a))
    | And (a, b) ->
        let x = go a and y = go b in
        intern (NAnd (min x y, max x y))
    | Or (a, b) ->
        let x = go a and y = go b in
        intern (NOr (min x y, max x y))
    | Xor (a, b) ->
        let x = go a and y = go b in
        intern (NXor (min x y, max x y))
  in
  let roots = List.map go exprs in
  (Array.of_list (List.rev !nodes), roots)

let operands = function
  | NConst _ | NInput _ -> []
  | NNot a -> [ a ]
  | NAnd (a, b) | NOr (a, b) | NXor (a, b) -> [ a; b ]

type compiled = {
  program : Program.t;
  result : int;
  input_regs : (string * int) list;
  ops : int;
}

type compiled_many = {
  many_program : Program.t;
  results : int list;
  many_input_regs : (string * int) list;
  many_ops : int;
}

(* ---- LUT-3 technology mapping ----

   SHyRA's LUTs have three inputs but the expression operators use at
   most two, so a post-CSE fusion pass packs single-use subexpressions
   into their consumer whenever the fused function still has at most
   three distinct leaf operands (e.g. acc AND (a XNOR b) becomes one
   LUT — the hand-written counter's EQACC table).  A "lop" is one
   physical LUT evaluation. *)

type tree = TLeaf of int | TNot of tree | TAnd of tree * tree | TOr of tree * tree | TXor of tree * tree

exception Too_big

type lop = { owner : int;  (* node id whose value this lop produces *)
             table : Lut.t;
             args : int array  (* leaf node ids, at most three *) }

let rec eval_tree assignment = function
  | TLeaf pos -> assignment.(pos)
  | TNot a -> not (eval_tree assignment a)
  | TAnd (a, b) -> eval_tree assignment a && eval_tree assignment b
  | TOr (a, b) -> eval_tree assignment a || eval_tree assignment b
  | TXor (a, b) -> eval_tree assignment a <> eval_tree assignment b

(* Lower the DAG to lops with greedy fusion.  [uses] counts operand
   occurrences plus root occurrences, so expandable nodes (single use,
   not a root) are exactly those whose only consumer is the node being
   lowered. *)
let lower nodes roots uses =
  let n = Array.length nodes in
  let is_gate id =
    match nodes.(id) with
    | NNot _ | NAnd _ | NOr _ | NXor _ -> true
    | NInput _ | NConst _ -> false
  in
  let fused = Array.make n false in
  let lops = ref [] in
  (* Per-lop leaf collection with rollback. *)
  let build_tree id =
    let leaves = ref [] in
    let leaf_pos o =
      match List.assoc_opt o !leaves with
      | Some pos -> pos
      | None ->
          let pos = List.length !leaves in
          if pos >= 3 then raise Too_big;
          leaves := !leaves @ [ (o, pos) ];
          pos
    in
    let expanded = ref [] in
    let rec gate_tree id =
      match nodes.(id) with
      | NNot a -> TNot (operand a)
      | NAnd (a, b) -> TAnd (operand a, operand b)
      | NOr (a, b) -> TOr (operand a, operand b)
      | NXor (a, b) -> TXor (operand a, operand b)
      | NInput _ | NConst _ -> assert false
    and operand o =
      if is_gate o && uses.(o) = 1 then begin
        (* Try to fuse; on overflow fall back to a leaf. *)
        let saved_leaves = !leaves and saved_expanded = !expanded in
        try
          expanded := o :: !expanded;
          gate_tree o
        with Too_big ->
          leaves := saved_leaves;
          expanded := saved_expanded;
          TLeaf (leaf_pos o)
      end
      else TLeaf (leaf_pos o)
    in
    (* A greedy expansion of the first operand can exhaust the three
       leaf slots and leave none for the second; fall back to the
       unfused one-level tree (at most two leaves - always fits). *)
    let plain_tree id =
      leaves := [];
      expanded := [];
      let leaf o = TLeaf (leaf_pos o) in
      match nodes.(id) with
      | NNot a -> TNot (leaf a)
      | NAnd (a, b) -> TAnd (leaf a, leaf b)
      | NOr (a, b) -> TOr (leaf a, leaf b)
      | NXor (a, b) -> TXor (leaf a, leaf b)
      | NInput _ | NConst _ -> assert false
    in
    match nodes.(id) with
    | NConst b -> ((if b then Lut.one else Lut.zero), [||], [])
    | NInput _ -> assert false
    | _ ->
        let tree = try gate_tree id with Too_big -> plain_tree id in
        let arg_ids = Array.of_list (List.map fst !leaves) in
        let table =
          Lut.of_fn (fun i0 i1 i2 ->
              eval_tree [| i0; i1; i2 |] tree)
        in
        (table, arg_ids, !expanded)
  in
  (* Consumers have higher ids (post-order interning), so descending
     order decides fusion before the operand would emit its own lop. *)
  for id = n - 1 downto 0 do
    let emit =
      (not fused.(id))
      && match nodes.(id) with NInput _ -> false | _ -> true
    in
    if emit then begin
      let table, args, expanded = build_tree id in
      List.iter (fun o -> fused.(o) <- true) expanded;
      lops := { owner = id; table; args } :: !lops
    end
  done;
  ignore roots;
  !lops

let compile_roots exprs =
  let exprs = List.map simplify exprs in
  let nodes, roots = build_dag exprs in
  let n = Array.length nodes in
  (* Input registers first. *)
  let names =
    List.fold_left
      (fun acc e ->
        List.fold_left
          (fun acc s -> if List.mem s acc then acc else acc @ [ s ])
          acc (inputs e))
      [] exprs
  in
  if List.length names > Config.num_registers then
    invalid_arg "Expr.compile: more than 10 distinct inputs";
  let input_regs = List.mapi (fun i s -> (s, i)) names in
  let reg_of_input s = List.assoc s input_regs in
  (* Operand uses for the fusion decision. *)
  let fusion_uses = Array.make n 0 in
  Array.iter
    (fun node -> List.iter (fun o -> fusion_uses.(o) <- fusion_uses.(o) + 1) (operands node))
    nodes;
  List.iter (fun root -> fusion_uses.(root) <- fusion_uses.(root) + 1) roots;
  let lops = lower nodes roots fusion_uses in
  (* Register-allocation uses: one per lop argument occurrence plus one
     per root occurrence. *)
  let uses = Array.make n 0 in
  List.iter
    (fun l -> Array.iter (fun o -> uses.(o) <- uses.(o) + 1) l.args)
    lops;
  List.iter (fun root -> uses.(root) <- uses.(root) + 1) roots;
  (* Register state. *)
  let placed = Array.make n (-1) in
  let free = ref [] in
  for r = Config.num_registers - 1 downto List.length names do
    free := r :: !free
  done;
  Array.iteri
    (fun id node ->
      match node with NInput s -> placed.(id) <- reg_of_input s | _ -> ())
    nodes;
  let alloc () =
    match !free with
    | r :: rest ->
        free := rest;
        r
    | [] -> raise Out_of_registers
  in
  let release r = free := r :: !free in
  let consume id =
    uses.(id) <- uses.(id) - 1;
    if uses.(id) = 0 && placed.(id) >= 0 then release placed.(id)
  in
  let pending = ref lops in
  let ready () =
    List.filter
      (fun l -> Array.for_all (fun o -> placed.(o) >= 0) l.args)
      !pending
  in
  let instrs = ref [] in
  let ops_count = ref 0 in
  while !pending <> [] do
    let candidates = ready () in
    (match candidates with
    | [] -> invalid_arg "Expr.compile: scheduling stuck (cycle in DAG?)"
    | _ -> ());
    let this_cycle = List.filteri (fun i _ -> i < 2) candidates in
    (* Read operand registers before any release/alloc of this cycle. *)
    let with_operand_regs =
      List.map
        (fun l -> (l, Array.to_list (Array.map (fun o -> placed.(o)) l.args)))
        this_cycle
    in
    (* Consume operands (may release registers for reuse as targets). *)
    List.iter (fun (l, _) -> Array.iter consume l.args) with_operand_regs;
    (* Allocate targets and emit. *)
    let slot_instrs =
      List.mapi
        (fun slot (l, operand_regs) ->
          let target = alloc () in
          placed.(l.owner) <- target;
          incr ops_count;
          let base_sel = if slot = 0 then 0 else 3 in
          let sels =
            List.mapi (fun k r -> Asm.Sel (base_sel + k, r)) operand_regs
          in
          let lut = if slot = 0 then Asm.Lut1 l.table else Asm.Lut2 l.table in
          let route = Asm.Route (slot, Some target) in
          (lut :: sels) @ [ route ])
        with_operand_regs
    in
    let disable_other =
      if List.length this_cycle = 1 then [ Asm.Route (1, None) ] else []
    in
    instrs :=
      !instrs
      @ List.concat slot_instrs @ disable_other
      @ [ Asm.Commit (Printf.sprintf "cyc%d" (List.length !instrs)) ];
    pending := List.filter (fun l -> not (List.memq l this_cycle)) !pending
  done;
  (* Root registers: for bare inputs, their input registers. *)
  let results =
    List.map
      (fun root ->
        assert (placed.(root) >= 0);
        placed.(root))
      roots
  in
  (Asm.assemble !instrs, results, input_regs, !ops_count)

let compile expr =
  let program, results, input_regs, ops = compile_roots [ expr ] in
  match results with
  | [ result ] -> { program; result; input_regs; ops }
  | _ -> assert false

let compile_many exprs =
  if exprs = [] then invalid_arg "Expr.compile_many: no outputs";
  let many_program, results, many_input_regs, many_ops = compile_roots exprs in
  { many_program; results; many_input_regs; many_ops }

let load_inputs env input_regs state =
  List.fold_left
    (fun st (name, reg) ->
      let value =
        match List.assoc_opt name env with
        | Some v -> v
        | None -> raise Not_found
      in
      Machine.set st reg value)
    state input_regs

let run e ~env =
  let c = compile e in
  let final =
    Program.run c.program (load_inputs env c.input_regs (Machine.create ()))
  in
  Machine.get final c.result

let run_many es ~env =
  let c = compile_many es in
  let final =
    Program.run c.many_program (load_inputs env c.many_input_regs (Machine.create ()))
  in
  List.map (Machine.get final) c.results

let random rng ~inputs:names ~depth =
  if names = [] then invalid_arg "Expr.random: need at least one input";
  let arr = Array.of_list names in
  let rec go depth =
    if depth <= 0 || Hr_util.Rng.chance rng 0.2 then
      if Hr_util.Rng.chance rng 0.1 then Const (Hr_util.Rng.bool rng)
      else Input (Hr_util.Rng.pick rng arr)
    else
      match Hr_util.Rng.int rng 4 with
      | 0 -> Not (go (depth - 1))
      | 1 -> And (go (depth - 1), go (depth - 1))
      | 2 -> Or (go (depth - 1), go (depth - 1))
      | _ -> Xor (go (depth - 1), go (depth - 1))
  in
  go depth
