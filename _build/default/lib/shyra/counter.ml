let compare_cycles = 4
let increment_cycles = 4

let initial_state ~init ~bound =
  if init < 0 || init > 15 || bound < 0 || bound > 15 then
    invalid_arg "Counter: init and bound must be 4-bit values";
  let s = Machine.create () in
  let s = Machine.write_nibble s 0 init in
  Machine.write_nibble s 4 bound

(* Equality comparison of r0..r3 against r4..r7 into r8:
   r8 := (r0 ≡ r4); then r8 := r8 ∧ (rk ≡ r4+k) for k = 1..3. *)
let compare_phase =
  Asm.cycle ~lut1:Lut.xnor01 ~sels:[ (0, 0); (1, 4) ] ~routes:[ (0, Some 8); (1, None) ]
    "cmp0"
  @ Asm.cycle ~lut1:Lut.eq_acc ~sels:[ (0, 1); (1, 5); (2, 8) ] "cmp1"
  @ Asm.cycle ~sels:[ (0, 2); (1, 6) ] "cmp2"
  @ Asm.cycle ~sels:[ (0, 3); (1, 7) ] "cmp3"

(* Ripple increment of r0..r3; the carry ping-pongs r8 → r9 → r8 so a
   bit's sum and carry can be produced in the same cycle by the two
   LUTs.  The final carry-out is discarded. *)
let increment_phase =
  Asm.cycle ~lut1:Lut.not0 ~lut2:Lut.buf0 ~sels:[ (0, 0); (3, 0) ]
    ~routes:[ (0, Some 0); (1, Some 8) ]
    "inc0"
  @ Asm.cycle ~lut1:Lut.xor01 ~lut2:Lut.and01
      ~sels:[ (0, 1); (1, 8); (3, 1); (4, 8) ]
      ~routes:[ (0, Some 1); (1, Some 9) ]
      "inc1"
  @ Asm.cycle ~sels:[ (0, 2); (1, 9); (3, 2); (4, 9) ]
      ~routes:[ (0, Some 2); (1, Some 8) ]
      "inc2"
  @ Asm.cycle ~sels:[ (0, 3); (1, 8); (3, 3); (4, 8) ]
      ~routes:[ (0, Some 3); (1, None) ]
      "inc3"

type result = { program : Program.t; iterations : int; final : Machine.state }

let build ?(init = 0) ~bound () =
  let state = ref (initial_state ~init ~bound) in
  let current = ref Config.power_on in
  let chunks = ref [] in
  let run_phase instrs =
    let prog = Asm.assemble ~start:!current instrs in
    state := Program.run prog !state;
    (match List.rev (Program.configs prog) with
    | last :: _ -> current := last
    | [] -> ());
    chunks := prog :: !chunks
  in
  let rec loop iterations =
    run_phase compare_phase;
    if Machine.get !state 8 then iterations
    else if iterations >= 16 then
      (* Unreachable: increment is a bijection mod 16, so equality is
         always reached within 15 increments. *)
      assert false
    else begin
      run_phase increment_phase;
      loop (iterations + 1)
    end
  in
  let iterations = loop 0 in
  let program =
    List.fold_left (fun acc p -> Program.append p acc) (Program.of_steps [])
      !chunks
  in
  { program; iterations; final = !state }
