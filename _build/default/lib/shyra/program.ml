type step = { cfg : Config.t; label : string }

type t = step array

let of_steps steps = Array.of_list steps

let length = Array.length

let step t i =
  if i < 0 || i >= length t then invalid_arg "Program.step: out of range";
  t.(i)

let steps t = Array.to_list t

let configs t = Array.to_list (Array.map (fun s -> s.cfg) t)

let append = Array.append

let run t s = Array.fold_left (fun st { cfg; _ } -> Machine.step cfg st) s t

let trajectory t s =
  let _, acc =
    Array.fold_left
      (fun (st, acc) { cfg; _ } ->
        let st' = Machine.step cfg st in
        (st', st' :: acc))
      (s, []) t
  in
  List.rev acc
