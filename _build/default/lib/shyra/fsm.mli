(** Self-reconfiguring finite state machines on SHyRA.

    The paper's related work (Köster & Teich, ref. [8]) computes
    reconfiguration bits on chip to implement {e self-reconfigurable
    FSMs}: instead of holding the whole transition table in logic, the
    machine reconfigures the next-state logic to the current state's
    row between steps.  On SHyRA: the FSM state lives in registers
    r0..r1 (up to four states), the input bit is host-written into r9
    each step, and before every step the controller reconfigures LUT1
    and LUT2 to the current state's next-state functions — a
    state-dependent (hence data-dependent) reconfiguration trace.

    One FSM step costs one machine cycle; the trace's requirement at a
    step is whatever the state change forced to be rewritten, so
    input sequences that dwell in few states yield cheap,
    phase-structured traces — measured in the benches. *)

(** An FSM over at most 4 states (coded 0..3) with boolean input:
    [next.(state)] is the pair of next-state bit functions
    [(bit0 : input -> state_bit0 -> state_bit1 -> bool, bit1 : ...)]
    represented as LUT tables over (input, s0, s1); [accept] marks
    accepting states. *)
type spec = {
  num_states : int;  (** 1..4 *)
  next : (Lut.t * Lut.t) array;  (** per current state *)
  accept : bool array;
}

(** [detector_101] — the classic "ends with 101" Moore detector
    (3 states). *)
val detector_101 : spec

(** [parity_fsm] — 2-state parity tracker (accepts odd number of 1s). *)
val parity_fsm : spec

(** [run spec inputs] simulates the self-reconfiguring FSM over the
    input word and returns (program executed, acceptance per step).
    Raises [Invalid_argument] on malformed specs. *)
val run : spec -> bool list -> Program.t * bool list

(** [reference spec inputs] — pure-software execution used by the
    tests: the per-step state sequence. *)
val reference : spec -> bool list -> int list
