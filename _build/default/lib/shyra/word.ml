type t = Expr.t array

let input name ~bits =
  if bits < 1 then invalid_arg "Word.input: need at least one bit";
  Array.init bits (fun k -> Expr.Input (Printf.sprintf "%s.%d" name k))

let const ~bits v =
  if bits < 1 then invalid_arg "Word.const: need at least one bit";
  Array.init bits (fun k -> Expr.Const (v land (1 lsl k) <> 0))

let width = Array.length

let check_same a b =
  if width a <> width b then invalid_arg "Word: width mismatch"

let lognot = Array.map (fun e -> Expr.Not e)

let map2 f a b =
  check_same a b;
  Array.map2 f a b

let logand = map2 (fun x y -> Expr.And (x, y))
let logor = map2 (fun x y -> Expr.Or (x, y))
let logxor = map2 (fun x y -> Expr.Xor (x, y))

let add a b =
  check_same a b;
  let n = width a in
  let out = Array.make n (Expr.Const false) in
  let carry = ref (Expr.Const false) in
  for k = 0 to n - 1 do
    let x = a.(k) and y = b.(k) and c = !carry in
    out.(k) <- Expr.(Xor (Xor (x, y), c));
    carry := Expr.(Or (And (x, y), And (c, Xor (x, y))))
  done;
  out

let succ w = add w (const ~bits:(width w) 1)

let equal a b =
  check_same a b;
  Array.fold_left
    (fun acc pairwise -> Expr.And (acc, pairwise))
    (Expr.Const true)
    (map2 (fun x y -> Expr.Not (Expr.Xor (x, y))) a b)

let less_than a b =
  check_same a b;
  (* MSB-down: a < b iff at the highest differing bit a=0,b=1. *)
  let n = width a in
  let rec go k =
    if k < 0 then Expr.Const false
    else
      let ak = a.(k) and bk = b.(k) in
      Expr.(Or (And (Not ak, bk), And (Not (Xor (ak, bk)), go (k - 1))))
  in
  go (n - 1)

let mux sel ~then_ ~else_ =
  check_same then_ else_;
  map2 (fun t e -> Expr.(Or (And (sel, t), And (Not sel, e)))) then_ else_

let eval env w =
  let acc = ref 0 in
  Array.iteri (fun k e -> if Expr.eval env e then acc := !acc lor (1 lsl k)) w;
  !acc

let bindings name ~bits v =
  List.init bits (fun k -> (Printf.sprintf "%s.%d" name k, v land (1 lsl k) <> 0))

let compile_bit w k =
  if k < 0 || k >= width w then invalid_arg "Word.compile_bit: bit out of range";
  Expr.compile w.(k)

let compile w = Expr.compile_many (Array.to_list w)

let run w ~env =
  let bits = Expr.run_many (Array.to_list w) ~env in
  List.fold_left
    (fun acc (k, b) -> if b then acc lor (1 lsl k) else acc)
    0
    (List.mapi (fun k b -> (k, b)) bits)
