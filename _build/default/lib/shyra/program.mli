(** SHyRA programs: labelled configuration sequences.

    A program is executed cycle by cycle; entering cycle [i] is
    reconfiguration step [i] of the paper's model (the configuration
    bits that differ from the previous cycle must be rewritten), after
    which the fabric computes for one cycle. *)

type step = { cfg : Config.t; label : string }

type t

(** [of_steps steps] builds a program (possibly empty). *)
val of_steps : step list -> t

(** [length t] is the number of cycles. *)
val length : t -> int

(** [step t i] is cycle [i]. *)
val step : t -> int -> step

(** [steps t] lists all cycles. *)
val steps : t -> step list

(** [configs t] lists the configurations only. *)
val configs : t -> Config.t list

(** [append a b] concatenates programs. *)
val append : t -> t -> t

(** [run t s] executes all cycles from state [s]. *)
val run : t -> Machine.state -> Machine.state

(** [trajectory t s] is the state {e after} each cycle (length =
    [length t]). *)
val trajectory : t -> Machine.state -> Machine.state list
