(** The paper's test application: a 4-bit counter with variable upper
    bound (§6).

    The counter value lives in registers r0..r3 (LSB first) and the
    bound in r4..r7; both are plain data, loaded by the host before the
    run.  Because SHyRA's two 3-input LUTs are the only functional
    units, the design is time-partitioned: each loop iteration is a
    4-cycle equality comparison (running-equality accumulator in r8)
    followed — while the values differ — by a 4-cycle ripple increment
    (carry ping-ponging between r8 and r9).  The halt condition is
    data-dependent, exactly the "worst case upper bound" situation of
    §2, so the program is generated while simulating.

    For init = 0 and bound = 10 (the paper's 0000 → 1010 run) the
    program has 11·4 + 10·4 = 84 reconfiguration steps — the analogue
    of the paper's n = 110 trace under our own mapping
    (EXPERIMENTS.md records both). *)

type result = {
  program : Program.t;  (** every executed cycle, in order *)
  iterations : int;  (** number of increments performed *)
  final : Machine.state;  (** register file at halt *)
}

(** [build ?init ~bound ()] generates and simulates the counter run.
    [init] (default 0) and [bound] must be 4-bit values.  The counter
    increments modulo 16 until it equals [bound], so the run always
    terminates within 15 increments. *)
val build : ?init:int -> bound:int -> unit -> result

(** [initial_state ~init ~bound] is the host-loaded register file. *)
val initial_state : init:int -> bound:int -> Machine.state

(** [compare_cycles], [increment_cycles] are the per-phase cycle counts
    (4 and 4) — exposed for the tests and the experiment harness. *)
val compare_cycles : int

val increment_cycles : int
