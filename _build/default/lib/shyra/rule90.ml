let step_cycles = 8

(* One CA step.  Scratch alternation: cycle t saves old c_t into r8 (t
   even) or r9 (t odd) while computing c_t' from the previous cell's
   saved old value and the not-yet-overwritten right neighbour. *)
let step_instrs k =
  let scratch t = if t mod 2 = 0 then 8 else 9 in
  let label t = Printf.sprintf "ca%d_t%d" k t in
  (* t0: c0' = old c1; save old c0. *)
  Asm.cycle ~lut1:Lut.buf0 ~lut2:Lut.buf0
    ~sels:[ (0, 1); (3, 0) ]
    ~routes:[ (0, Some 0); (1, Some (scratch 0)) ]
    (label 0)
  (* t1..t6: c_t' = saved old c_{t-1} XOR old c_{t+1}; save old c_t. *)
  @ List.concat_map
      (fun t ->
        Asm.cycle ~lut1:Lut.xor01 ~lut2:Lut.buf0
          ~sels:[ (0, scratch (t - 1)); (1, t + 1); (3, t) ]
          ~routes:[ (0, Some t); (1, Some (scratch t)) ]
          (label t))
      [ 1; 2; 3; 4; 5; 6 ]
  (* t7: c7' = saved old c6 (right boundary is zero). *)
  @ Asm.cycle ~lut1:Lut.buf0 ~sels:[ (0, scratch 6) ]
      ~routes:[ (0, Some 7); (1, None) ]
      (label 7)

let build ~steps =
  if steps < 0 then invalid_arg "Rule90.build: negative step count";
  Asm.assemble (List.concat_map step_instrs (List.init steps Fun.id))

let load cells =
  if cells < 0 || cells > 0xFF then invalid_arg "Rule90: cells must be 8 bits";
  let s = Machine.create () in
  let s = Machine.write_nibble s 0 (cells land 0xF) in
  Machine.write_nibble s 4 ((cells lsr 4) land 0xF)

let read s =
  Machine.read_nibble s 0 lor (Machine.read_nibble s 4 lsl 4)

let run ~cells ~steps = read (Program.run (build ~steps) (load cells))

let reference ~cells ~steps =
  if cells < 0 || cells > 0xFF then invalid_arg "Rule90.reference: cells must be 8 bits";
  let step row =
    let bit i = if i < 0 || i > 7 then 0 else (row lsr i) land 1 in
    let rec go i acc = if i > 7 then acc else go (i + 1) (acc lor ((bit (i - 1) lxor bit (i + 1)) lsl i)) in
    go 0 0
  in
  let rec go row k = if k = 0 then row else go (step row) (k - 1) in
  go cells steps
