type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let m = mean xs in
  let n = float_of_int (Array.length xs) in
  let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
  sqrt (ss /. n)

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty sample";
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    median = percentile xs 50.;
  }

let of_ints xs = Array.map float_of_int xs

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.2f med=%.2f max=%.2f" s.n
    s.mean s.stddev s.min s.median s.max
