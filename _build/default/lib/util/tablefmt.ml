type align = Left | Right

let looks_numeric cell =
  cell <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = '%')
       cell

let pad align w cell =
  let missing = w - String.length cell in
  if missing <= 0 then cell
  else
    match align with
    | Left -> cell ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ cell

let render ?aligns ~header rows =
  let ncols = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Tablefmt.render: row %d has %d cells, expected %d" i
             (List.length row) ncols))
    rows;
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (List.iteri (fun c cell -> widths.(c) <- max widths.(c) (String.length cell)))
    rows;
  let col_align =
    match aligns with
    | Some a when List.length a = ncols -> fun c _ -> List.nth a c
    | Some _ -> invalid_arg "Tablefmt.render: aligns arity mismatch"
    | None ->
        (* Default: right-align a column iff all its body cells look numeric. *)
        let numeric = Array.make ncols true in
        List.iter
          (List.iteri (fun c cell -> if not (looks_numeric cell) then numeric.(c) <- false))
          rows;
        fun c _ -> if numeric.(c) && rows <> [] then Right else Left
  in
  let line row ~is_header =
    row
    |> List.mapi (fun c cell ->
           let a = if is_header then Left else col_align c cell in
           pad a widths.(c) cell)
    |> String.concat "  "
  in
  let sep =
    Array.to_list widths |> List.map (fun w -> String.make w '-') |> String.concat "  "
  in
  let body = List.map (fun r -> line r ~is_header:false) rows in
  String.concat "\n" (line header ~is_header:true :: sep :: body)

let print ?aligns ~header rows =
  print_endline (render ?aligns ~header rows)

let rule width = String.make width '-'

let section title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n==  %s  ==\n%s\n" bar title bar
