lib/util/par.ml: Array Domain List Option
