lib/util/rng.mli:
