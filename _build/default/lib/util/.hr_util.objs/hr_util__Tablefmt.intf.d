lib/util/tablefmt.mli:
