lib/util/par.mli:
