(** Fixed-width bitsets backed by [int] arrays.

    A bitset value is immutable from the caller's point of view: every
    operation returns a fresh set.  Width (the number of addressable bit
    positions) is fixed at creation; operations on sets of different
    widths raise [Invalid_argument].

    Bitsets are the universal currency of this library: a context
    requirement, a hypercontext and a configuration diff are all bitsets
    over a universe of reconfigurable units ("switches"). *)

type t

(** [create width] is the empty set over positions [0 .. width-1]. *)
val create : int -> t

(** [width s] is the number of addressable positions of [s]. *)
val width : t -> int

(** [is_empty s] is [true] iff no bit of [s] is set. *)
val is_empty : t -> bool

(** [mem s i] tests bit [i].  Raises [Invalid_argument] when [i] is out
    of range. *)
val mem : t -> int -> bool

(** [add s i] is [s] with bit [i] set. *)
val add : t -> int -> t

(** [remove s i] is [s] with bit [i] cleared. *)
val remove : t -> int -> t

(** [singleton width i] is the set over [width] positions containing
    exactly [i]. *)
val singleton : int -> int -> t

(** [full width] is the set with all [width] bits set. *)
val full : int -> t

(** [of_list width is] is the set of all positions in [is]. *)
val of_list : int -> int list -> t

(** [to_list s] is the sorted list of set positions. *)
val to_list : t -> int list

(** [union a b] is [a ∪ b]. *)
val union : t -> t -> t

(** [inter a b] is [a ∩ b]. *)
val inter : t -> t -> t

(** [diff a b] is [a \ b]. *)
val diff : t -> t -> t

(** [symdiff a b] is the symmetric difference [a Δ b] — the changeover
    measure of the paper's cost-model variant. *)
val symdiff : t -> t -> t

(** [cardinal s] is the number of set bits (the switch-model cost of a
    hypercontext [s]). *)
val cardinal : t -> int

(** [subset a b] is [true] iff [a ⊆ b]. *)
val subset : t -> t -> bool

(** [equal a b] is structural equality. *)
val equal : t -> t -> bool

(** [compare] is a total order compatible with [equal]. *)
val compare : t -> t -> int

(** [hash s] is a hash compatible with [equal]. *)
val hash : t -> int

(** [fold f s init] folds [f] over the set positions in increasing
    order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [iter f s] applies [f] to each set position in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [union_into ~into s] destructively unions [s] into the internal
    buffer [into] and returns [into].  Only for tight inner loops that
    own [into]; [into] must have been produced by {!copy}. *)
val union_into : into:t -> t -> t

(** [copy s] is a physically fresh copy of [s] (safe target for
    {!union_into}). *)
val copy : t -> t

(** [random rng ~width ~density] is a random subset where each bit is
    set with probability [density]; [rng] supplies the randomness as a
    [unit -> float] in [0,1). *)
val random : (unit -> float) -> width:int -> density:float -> t

(** [pp] prints as ["{1,4,7}"]. *)
val pp : Format.formatter -> t -> unit

(** [pp_bits] prints as a 0/1 string, least significant position
    first. *)
val pp_bits : Format.formatter -> t -> unit

(** [to_string s] is [Format.asprintf "%a" pp s]. *)
val to_string : t -> string
