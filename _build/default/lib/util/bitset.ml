(* Fixed-width bitsets on int arrays.  Each word carries [bits_per_word]
   bits; the top word is kept masked so that [cardinal], [equal] and
   [hash] can work wordwise without special-casing the tail. *)

let bits_per_word = Sys.int_size

type t = { width : int; words : int array }

let nwords width = (width + bits_per_word - 1) / bits_per_word

let create width =
  if width < 0 then invalid_arg "Bitset.create: negative width";
  { width; words = Array.make (nwords width) 0 }

let width s = s.width

let check_index s i =
  if i < 0 || i >= s.width then
    invalid_arg
      (Printf.sprintf "Bitset: index %d out of range [0,%d)" i s.width)

let check_same a b =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Bitset: width mismatch (%d vs %d)" a.width b.width)

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let mem s i =
  check_index s i;
  s.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let copy s = { s with words = Array.copy s.words }

let add s i =
  check_index s i;
  let t = copy s in
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word));
  t

let remove s i =
  check_index s i;
  let t = copy s in
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word));
  t

let singleton width i = add (create width) i

let full width =
  let s = create width in
  let t = copy s in
  for k = 0 to Array.length t.words - 1 do
    t.words.(k) <- -1
  done;
  (* Mask the tail so unused positions stay clear. *)
  let used_in_top = width - (Array.length t.words - 1) * bits_per_word in
  if Array.length t.words > 0 && used_in_top < bits_per_word then
    t.words.(Array.length t.words - 1) <- (1 lsl used_in_top) - 1;
  t

let of_list width is =
  let s = copy (create width) in
  List.iter
    (fun i ->
      check_index s i;
      s.words.(i / bits_per_word) <-
        s.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word)))
    is;
  s

let map2 f a b =
  check_same a b;
  { width = a.width; words = Array.map2 f a.words b.words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b
let symdiff a b = map2 ( lxor ) a b

let popcount_word w0 =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w0 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount_word w) 0 s.words

let subset a b =
  check_same a b;
  let n = Array.length a.words in
  let rec go k = k >= n || (a.words.(k) land lnot b.words.(k) = 0 && go (k + 1)) in
  go 0

let equal a b = a.width = b.width && Array.for_all2 ( = ) a.words b.words

let compare a b =
  let c = Stdlib.compare a.width b.width in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash s =
  Array.fold_left (fun acc w -> (acc * 1000003) lxor (w land max_int)) s.width s.words

let fold f s init =
  let acc = ref init in
  for k = 0 to Array.length s.words - 1 do
    let base = k * bits_per_word in
    let w = ref s.words.(k) in
    while !w <> 0 do
      let low = !w land - !w in
      let rec bit_index b i = if b = 1 then i else bit_index (b lsr 1) (i + 1) in
      acc := f (base + bit_index low 0) !acc;
      w := !w land (!w - 1)
    done
  done;
  !acc

let iter f s = fold (fun i () -> f i) s ()

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let union_into ~into s =
  check_same into s;
  for k = 0 to Array.length into.words - 1 do
    into.words.(k) <- into.words.(k) lor s.words.(k)
  done;
  into

let random next_float ~width ~density =
  let s = copy (create width) in
  for i = 0 to width - 1 do
    if next_float () < density then
      s.words.(i / bits_per_word) <-
        s.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))
  done;
  s

let pp ppf s =
  let first = ref true in
  Format.pp_print_char ppf '{';
  iter
    (fun i ->
      if !first then first := false else Format.pp_print_char ppf ',';
      Format.pp_print_int ppf i)
    s;
  Format.pp_print_char ppf '}'

let pp_bits ppf s =
  for i = 0 to s.width - 1 do
    Format.pp_print_char ppf (if mem s i then '1' else '0')
  done

let to_string s = Format.asprintf "%a" pp s
