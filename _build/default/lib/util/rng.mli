(** Deterministic pseudo-random numbers (SplitMix64).

    Every stochastic component of the library (workload generators, the
    genetic algorithm, simulated annealing) takes an explicit [Rng.t] so
    experiments are reproducible bit-for-bit from a seed.  The stdlib
    [Random] module is deliberately not used anywhere. *)

type t

(** [create seed] is a fresh generator.  Equal seeds yield equal
    streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] derives a new, statistically independent generator and
    advances [t].  Use it to give sub-components their own streams. *)
val split : t -> t

(** [bits64 t] is the next raw output truncated to 62 uniform bits —
    always non-negative as an OCaml [int]. *)
val bits64 : t -> int

(** [int t bound] is uniform in [0, bound).  Raises [Invalid_argument]
    on [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)
val int_in : t -> int -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [chance t p] is [true] with probability [p]. *)
val chance : t -> float -> bool

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [pick t arr] is a uniformly random element of [arr].  Raises
    [Invalid_argument] on an empty array. *)
val pick : t -> 'a array -> 'a
