(** Aligned plain-text tables for the experiment harness.

    The bench executable prints every reproduced paper table through this
    module so the output stays machine-greppable and diffable. *)

(** Column alignment. *)
type align = Left | Right

(** [render ~header rows] lays out [rows] under [header] with columns
    padded to the widest cell.  All rows must have the same arity as the
    header; raises [Invalid_argument] otherwise.  Numeric-looking cells
    are right-aligned unless [aligns] overrides the default. *)
val render : ?aligns:align list -> header:string list -> string list list -> string

(** [print ~header rows] renders and prints to stdout with a trailing
    newline. *)
val print : ?aligns:align list -> header:string list -> string list list -> unit

(** [rule width] is a horizontal rule of [-] characters. *)
val rule : int -> string

(** [section title] prints a prominent section banner to stdout, used to
    delimit experiment outputs. *)
val section : string -> unit
