(** Small descriptive-statistics helpers for the experiment harness. *)

(** Summary of a sample. *)
type summary = {
  n : int;
  mean : float;
  stddev : float;  (** population standard deviation *)
  min : float;
  max : float;
  median : float;
}

(** [summarize xs] computes a {!summary}.  Raises [Invalid_argument] on
    an empty array. *)
val summarize : float array -> summary

(** [mean xs] is the arithmetic mean; raises on empty input. *)
val mean : float array -> float

(** [stddev xs] is the population standard deviation. *)
val stddev : float array -> float

(** [percentile xs p] is the [p]-th percentile (0 ≤ p ≤ 100) using
    linear interpolation between closest ranks. *)
val percentile : float array -> float -> float

(** [of_ints xs] converts for convenience. *)
val of_ints : int array -> float array

(** [pp_summary] prints ["n=… mean=… sd=… min=… med=… max=…"]. *)
val pp_summary : Format.formatter -> summary -> unit
