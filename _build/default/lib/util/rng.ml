(* SplitMix64 (Steele, Lea, Flood 2014), on OCaml's 63-bit ints we keep
   the full 64-bit state in an [int64] and expose 63 usable bits. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Keep the result a non-negative OCaml int: drop to 62 uniform bits
   (Int64.to_int of a 63-bit value would overflow into the sign bit). *)
let bits64 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) land max_int

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max = max_int - (max_int mod bound) in
  let rec go () =
    let v = bits64 t in
    if v >= max then go () else v mod bound
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

(* bits64 yields 62 bits, so dividing by 2^62 keeps the result in
   [0, 1). *)
let float t = Stdlib.float_of_int (bits64 t) /. Stdlib.ldexp 1. 62

let bool t = bits64 t land 1 = 1

let chance t p = float t < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
