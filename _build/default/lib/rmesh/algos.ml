let or_grid n = Grid.create ~rows:1 ~cols:n

let or_config grid = Grid.uniform grid Partition.ew

let logical_or bits =
  let n = Array.length bits in
  if n = 0 then invalid_arg "Algos.logical_or: no bits";
  let grid = or_grid n in
  let buses = Grid.resolve grid (or_config grid) in
  let drivers =
    List.filteri (fun c _ -> bits.(c)) (List.init n (fun c -> (0, c, Port.E)))
  in
  let values = Grid.signals buses ~drivers in
  Grid.read buses values ~row:0 ~col:0 Port.E

let leftmost_config grid bits =
  let n = Grid.cols grid in
  if Array.length bits <> n then invalid_arg "Algos.leftmost_config: arity";
  let config = Grid.uniform grid Partition.ew in
  Array.iteri (fun c b -> if b then config.(0).(c) <- Partition.isolated) bits;
  config

let leftmost_one bits =
  let n = Array.length bits in
  if n = 0 then invalid_arg "Algos.leftmost_one: no bits";
  let grid = or_grid n in
  let buses = Grid.resolve grid (leftmost_config grid bits) in
  (* Every 1-PE drives its east port; a 1-PE reading silence on its
     west port has no 1 to its west. *)
  let drivers =
    List.filteri (fun c _ -> bits.(c)) (List.init n (fun c -> (0, c, Port.E)))
  in
  let values = Grid.signals buses ~drivers in
  let rec scan c =
    if c >= n then None
    else if bits.(c) && not (Grid.read buses values ~row:0 ~col:c Port.W) then Some c
    else scan (c + 1)
  in
  scan 0

let counting_grid n = Grid.create ~rows:(n + 1) ~cols:n

let counting_config grid bits =
  let n = Grid.cols grid in
  if Array.length bits <> n then invalid_arg "Algos.counting_config: arity";
  if Grid.rows grid <> n + 1 then
    invalid_arg "Algos.counting_config: grid must be (n+1) x n";
  Array.init (n + 1) (fun _r ->
      Array.init n (fun c -> if bits.(c) then Partition.ws_ne else Partition.ew))

let count_ones bits =
  let n = Array.length bits in
  if n = 0 then invalid_arg "Algos.count_ones: no bits";
  let grid = counting_grid n in
  let buses = Grid.resolve grid (counting_config grid bits) in
  let values = Grid.signals buses ~drivers:[ (0, 0, Port.W) ] in
  let rec scan r =
    if r > n then invalid_arg "Algos.count_ones: signal lost (bug)"
    else if Grid.read buses values ~row:r ~col:(n - 1) Port.E then r
    else scan (r + 1)
  in
  scan 0

let prefix_or bits =
  let n = Array.length bits in
  if n = 0 then invalid_arg "Algos.prefix_or: no bits";
  let grid = or_grid n in
  let buses = Grid.resolve grid (leftmost_config grid bits) in
  (* 1-PEs cut the bus and drive east: a port's west segment carries 1
     exactly when a 1 lies strictly to its west. *)
  let drivers =
    List.filteri (fun c _ -> bits.(c)) (List.init n (fun c -> (0, c, Port.E)))
  in
  let values = Grid.signals buses ~drivers in
  Array.init n (fun c -> Grid.read buses values ~row:0 ~col:c Port.W)

let row_or matrix =
  let rows = Array.length matrix in
  if rows = 0 then invalid_arg "Algos.row_or: empty matrix";
  let cols = Array.length matrix.(0) in
  if cols = 0 || Array.exists (fun r -> Array.length r <> cols) matrix then
    invalid_arg "Algos.row_or: ragged matrix";
  let grid = Grid.create ~rows ~cols in
  let buses = Grid.resolve grid (Grid.uniform grid Partition.ew) in
  let drivers =
    List.concat
      (List.init rows (fun r ->
           List.filteri (fun c _ -> matrix.(r).(c))
             (List.init cols (fun c -> (r, c, Port.E)))))
  in
  let values = Grid.signals buses ~drivers in
  Array.init rows (fun r -> Grid.read buses values ~row:r ~col:0 Port.E)

let broadcast_config grid ~target =
  if target < 0 || target >= Grid.rows grid then
    invalid_arg "Algos.broadcast_config: target row out of range";
  let config = Grid.uniform grid Partition.isolated in
  for c = 0 to Grid.cols grid - 1 do
    config.(target).(c) <- Partition.ew
  done;
  config

let broadcast_row grid ~target =
  let buses = Grid.resolve grid (broadcast_config grid ~target) in
  let values = Grid.signals buses ~drivers:[ (target, 0, Port.E) ] in
  Array.init (Grid.rows grid) (fun r ->
      Array.init (Grid.cols grid) (fun c -> Grid.read buses values ~row:r ~col:c Port.E))

let counting_stream ?phase_len ?(active_fraction = 0.4) rng ~bits ~words =
  if bits < 1 || words < 1 then
    invalid_arg "Algos.counting_stream: need positive bits/words";
  let grid = counting_grid bits in
  let fresh_mask () =
    let mask = Array.init bits (fun _ -> Hr_util.Rng.chance rng active_fraction) in
    if Array.for_all not mask then mask.(Hr_util.Rng.int rng bits) <- true;
    mask
  in
  let mask = ref (Array.make bits true) in
  let program =
    List.init words (fun i ->
        (match phase_len with
        | Some len when len > 0 && i mod len = 0 -> mask := fresh_mask ()
        | Some len when len <= 0 ->
            invalid_arg "Algos.counting_stream: phase_len must be positive"
        | _ -> ());
        let word =
          Array.init bits (fun c -> !mask.(c) && Hr_util.Rng.bool rng)
        in
        {
          Mesh_tracer.config = counting_config grid word;
          label = Printf.sprintf "count%d" i;
        })
  in
  (grid, program)

let rotating_broadcast grid ~steps =
  if steps < 1 then invalid_arg "Algos.rotating_broadcast: need positive steps";
  List.init steps (fun i ->
      {
        Mesh_tracer.config = broadcast_config grid ~target:(i mod Grid.rows grid);
        label = Printf.sprintf "bcast%d" i;
      })
