type t = { rows : int; cols : int }

let create ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Grid.create: need at least a 1x1 mesh";
  { rows; cols }

let rows t = t.rows
let cols t = t.cols

type config = Partition.t array array

let uniform t p = Array.init t.rows (fun _ -> Array.make t.cols p)

let validate t config =
  if
    Array.length config <> t.rows
    || Array.exists (fun row -> Array.length row <> t.cols) config
  then invalid_arg "Grid: configuration has wrong dimensions"

(* Port node ids: ((r * cols) + c) * 4 + port index. *)
type buses = {
  grid : t;
  count : int;  (* number of distinct buses *)
  canonical : int array;  (* node -> dense bus id *)
}

let node t ~row ~col port = (((row * t.cols) + col) * 4) + Port.index port

let resolve t config =
  validate t config;
  let n = t.rows * t.cols * 4 in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      let p = config.(r).(c) in
      (* Fuse ports within the PE according to its partition. *)
      List.iter
        (fun group ->
          match group with
          | [] -> ()
          | first :: rest ->
              List.iter
                (fun port -> union (node t ~row:r ~col:c first) (node t ~row:r ~col:c port))
                rest)
        (Partition.groups p);
      (* Wires to the east and south neighbours. *)
      if c + 1 < t.cols then
        union (node t ~row:r ~col:c Port.E) (node t ~row:r ~col:(c + 1) Port.W);
      if r + 1 < t.rows then
        union (node t ~row:r ~col:c Port.S) (node t ~row:(r + 1) ~col:c Port.N)
    done
  done;
  (* Flatten and assign dense ids. *)
  let canonical = Array.make n (-1) in
  let count = ref 0 in
  for i = 0 to n - 1 do
    let root = find i in
    if canonical.(root) = -1 then begin
      canonical.(root) <- !count;
      incr count
    end
  done;
  let dense = Array.init n (fun i -> canonical.(find i)) in
  { grid = t; count = !count; canonical = dense }

let bus_id buses ~row ~col port =
  if row < 0 || row >= buses.grid.rows || col < 0 || col >= buses.grid.cols then
    invalid_arg "Grid.bus_id: PE out of range";
  buses.canonical.(node buses.grid ~row ~col port)

let num_buses buses = buses.count

let signals buses ~drivers =
  let values = Array.make buses.count false in
  List.iter
    (fun (row, col, port) -> values.(bus_id buses ~row ~col port) <- true)
    drivers;
  values

let read buses values ~row ~col port = values.(bus_id buses ~row ~col port)
