(* A partition is stored as its restricted-growth string over the port
   order N,E,S,W: an int array [|g N; g E; g S; g W|] where group ids
   appear in first-use order.  The 15 such strings, sorted
   lexicographically, define the codes. *)

type t = { code : int; rgs : int array }

let rgs_strings =
  (* All restricted growth strings of length 4. *)
  let rec extend prefix maxg acc =
    if List.length prefix = 4 then List.rev prefix :: acc
    else
      let rec try_g g acc =
        if g > maxg + 1 then acc
        else try_g (g + 1) (extend (g :: prefix) (max maxg g) acc)
      in
      try_g 0 acc
  in
  extend [] (-1) [] |> List.map Array.of_list |> List.sort compare

let all =
  Array.of_list (List.mapi (fun code rgs -> { code; rgs }) rgs_strings)

let () = assert (Array.length all = 15)

let code t = t.code

let of_code i =
  if i < 0 || i >= 15 then invalid_arg (Printf.sprintf "Partition.of_code: %d" i);
  all.(i)

let canonicalize raw =
  (* Renumber group ids into first-use order. *)
  let mapping = Hashtbl.create 4 in
  let next = ref 0 in
  Array.map
    (fun g ->
      match Hashtbl.find_opt mapping g with
      | Some g' -> g'
      | None ->
          let g' = !next in
          incr next;
          Hashtbl.replace mapping g g';
          g')
    raw

let of_rgs rgs =
  match Array.find_opt (fun t -> t.rgs = rgs) all with
  | Some t -> t
  | None -> invalid_arg "Partition: not a canonical partition"

let of_groups gs =
  let raw = Array.make 4 (-1) in
  List.iteri
    (fun gid ports ->
      List.iter
        (fun p ->
          let i = Port.index p in
          if raw.(i) <> -1 then invalid_arg "Partition.of_groups: duplicate port";
          raw.(i) <- gid)
        ports)
    gs;
  if Array.exists (( = ) (-1)) raw then
    invalid_arg "Partition.of_groups: missing port";
  of_rgs (canonicalize raw)

let groups t =
  let ngroups = 1 + Array.fold_left max 0 t.rgs in
  List.init ngroups (fun g ->
      List.filter (fun p -> t.rgs.(Port.index p) = g) Port.all)

let group_of t p = t.rgs.(Port.index p)

let same_group t a b = group_of t a = group_of t b

let isolated = of_groups [ [ Port.N ]; [ Port.E ]; [ Port.S ]; [ Port.W ] ]
let all_fused = of_groups [ [ Port.N; Port.E; Port.S; Port.W ] ]
let ew = of_groups [ [ Port.E; Port.W ]; [ Port.N ]; [ Port.S ] ]
let ns = of_groups [ [ Port.N; Port.S ]; [ Port.E ]; [ Port.W ] ]
let ns_ew = of_groups [ [ Port.N; Port.S ]; [ Port.E; Port.W ] ]
let ws_ne = of_groups [ [ Port.W; Port.S ]; [ Port.N; Port.E ] ]
let wn_es = of_groups [ [ Port.W; Port.N ]; [ Port.E; Port.S ] ]

let pp ppf t =
  Format.pp_print_char ppf '[';
  List.iteri
    (fun i g ->
      if i > 0 then Format.pp_print_char ppf '|';
      List.iter (Port.pp ppf) g)
    (groups t);
  Format.pp_print_char ppf ']'

let equal a b = a.code = b.code
