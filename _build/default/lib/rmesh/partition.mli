(** Port partitions — the internal switch state of one mesh PE.

    A reconfigurable-mesh PE fuses subsets of its four ports into local
    buses; the 15 set partitions of \{N,E,S,W\} are the possible switch
    configurations.  Each partition has a canonical 4-bit code
    (0..14), which is the unit of the mesh's configuration bits the
    hyperreconfiguration analysis works on. *)

type t

(** [all] — the 15 partitions, indexed by code. *)
val all : t array

(** [code t] / [of_code i] — the canonical code (0..14).  [of_code]
    raises [Invalid_argument] outside that range. *)
val code : t -> int

val of_code : int -> t

(** [of_groups gs] canonicalizes an explicit grouping.  Raises
    [Invalid_argument] unless [gs] partitions exactly \{N,E,S,W\}. *)
val of_groups : Port.t list list -> t

(** [groups t] — the partition's blocks, each sorted in N,E,S,W order,
    blocks ordered by their first port. *)
val groups : t -> Port.t list list

(** [same_group t a b] — are ports [a] and [b] fused in [t]? *)
val same_group : t -> Port.t -> Port.t -> bool

(** [group_of t p] — the block index of port [p] within {!groups}. *)
val group_of : t -> Port.t -> int

(** Common configurations. *)
val isolated : t
(** \{N\}\{E\}\{S\}\{W\} — all ports separate. *)

val all_fused : t
(** \{N,E,S,W\} — one bus through the PE. *)

val ew : t
(** \{E,W\}\{N\}\{S\} — a horizontal through-wire. *)

val ns : t
(** \{N,S\}\{E\}\{W\} — a vertical through-wire. *)

val ns_ew : t
(** \{N,S\}\{E,W\} — crossing wires. *)

val ws_ne : t
(** \{W,S\}\{N,E\} — the "step down" diagonal used by the classic O(1)
    counting algorithm. *)

val wn_es : t
(** \{W,N\}\{E,S\} — the opposite diagonal. *)

val pp : Format.formatter -> t -> unit

(** [equal] — code equality. *)
val equal : t -> t -> bool
