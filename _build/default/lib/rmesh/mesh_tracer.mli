open Hr_core

(** Configuration encoding and requirement-trace extraction for the
    mesh.

    Each PE's partition code occupies one 4-bit field of the mesh's
    switch universe (4·R·C configuration bits).  As with SHyRA, a
    reconfiguration step's context requirement is the set of
    configuration bits that must be rewritten; [`Field] granularity
    (rewrite a PE's whole code when it changes) is the primary mode. *)

(** A labelled configuration sequence. *)
type step = { config : Grid.config; label : string }

type program = step list

(** [space grid] — the mesh's switch universe, bit names
    ["pe<r>,<c>.<k>"]. *)
val space : Grid.t -> Switch_space.t

(** [encode grid config] — the configuration as a bitset over
    {!space}. *)
val encode : Grid.t -> Grid.config -> Hr_util.Bitset.t

(** [trace ?mode ?initial grid program] — the requirement trace;
    [`Bit] = changed bits, [`Field] (default) = whole changed PE codes.
    [initial] defaults to the all-{!Partition.isolated} configuration. *)
val trace :
  ?mode:[ `Bit | `Field ] -> ?initial:Grid.config -> Grid.t -> program -> Trace.t

(** [row_bands grid ~bands] — a task split into [bands] horizontal
    stripes of rows (as equal as possible), named ["rows0-2"] etc. *)
val row_bands : Grid.t -> bands:int -> Task_split.part array

(** [quadrants grid] — a 4-way task split into the mesh quadrants. *)
val quadrants : Grid.t -> Task_split.part array
