lib/rmesh/algos.mli: Grid Hr_util Mesh_tracer
