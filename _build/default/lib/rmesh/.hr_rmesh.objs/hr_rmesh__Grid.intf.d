lib/rmesh/grid.mli: Partition Port
