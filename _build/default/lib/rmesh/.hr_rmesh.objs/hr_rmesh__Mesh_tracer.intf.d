lib/rmesh/mesh_tracer.mli: Grid Hr_core Hr_util Switch_space Task_split Trace
