lib/rmesh/partition.mli: Format Port
