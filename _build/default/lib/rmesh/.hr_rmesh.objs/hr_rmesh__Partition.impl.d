lib/rmesh/partition.ml: Array Format Hashtbl List Port Printf
