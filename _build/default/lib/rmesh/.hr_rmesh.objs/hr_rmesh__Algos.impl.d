lib/rmesh/algos.ml: Array Grid Hr_util List Mesh_tracer Partition Port Printf
