lib/rmesh/port.mli: Format
