lib/rmesh/port.ml: Format Printf
