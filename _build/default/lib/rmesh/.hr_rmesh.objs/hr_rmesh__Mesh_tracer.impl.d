lib/rmesh/mesh_tracer.ml: Array Fun Grid Hr_core Hr_util List Partition Printf Switch_space Task_split Trace
