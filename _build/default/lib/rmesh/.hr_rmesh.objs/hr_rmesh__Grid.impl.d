lib/rmesh/grid.ml: Array Fun List Partition Port
