type t = N | E | S | W

let all = [ N; E; S; W ]

let index = function N -> 0 | E -> 1 | S -> 2 | W -> 3

let of_index = function
  | 0 -> N
  | 1 -> E
  | 2 -> S
  | 3 -> W
  | i -> invalid_arg (Printf.sprintf "Port.of_index: %d" i)

let opposite = function N -> S | S -> N | E -> W | W -> E

let pp ppf t =
  Format.pp_print_string ppf (match t with N -> "N" | E -> "E" | S -> "S" | W -> "W")
