(** Classic constant-time reconfigurable-mesh algorithms.

    These are the standard O(1) bus-based primitives (logical OR,
    leftmost-one, and the (n+1)×n unary counting scheme) — the kind of
    computation the paper's fully synchronized model targets ("a
    reconfigurable mesh where a reconfiguration is done at the start of
    each computational cycle", §4.2).  Each algorithm's configuration
    is {e data-dependent}, so running a stream of inputs produces a
    genuine dynamic-reconfiguration trace for the hyperreconfiguration
    analysis. *)

(** [or_grid n] / [or_config grid] / [logical_or bits] — wired-OR of
    [n] bits on a 1×n row in one cycle: every PE fuses E–W and the PEs
    holding 1 drive the shared bus. *)
val or_grid : int -> Grid.t

val or_config : Grid.t -> Grid.config
val logical_or : bool array -> bool

(** [leftmost_config grid bits] / [leftmost_one bits] — PEs holding 1
    cut the row bus and drive east; a 1-PE whose west port stays silent
    is the leftmost.  Returns [None] when all bits are 0. *)
val leftmost_config : Grid.t -> bool array -> Grid.config

val leftmost_one : bool array -> int option

(** [counting_grid n] is the (n+1)×n mesh; [counting_config grid bits]
    routes each 1-column one row down ({!Partition.ws_ne}) and each
    0-column straight through ({!Partition.ew}); [count_ones bits]
    injects a signal at the north-west corner and returns the exit row
    = the number of 1s, in one cycle. *)
val counting_grid : int -> Grid.t

val counting_config : Grid.t -> bool array -> Grid.config
val count_ones : bool array -> int

(** [prefix_or bits] — exclusive prefix-OR in one cycle: with the
    {!leftmost_config} wiring, PE [i]'s west port carries 1 iff some 1
    lies strictly to its west... for PEs that cut the bus; for fused
    0-PEs the same segment rule applies, so every PE reads its
    exclusive prefix. *)
val prefix_or : bool array -> bool array

(** [row_or matrix] — per-row wired-OR of an R×C boolean matrix in one
    cycle (every row one bus). *)
val row_or : bool array array -> bool array

(** [broadcast_config grid ~target] fuses row [target] into one bus and
    isolates every other PE; [broadcast_row grid ~target] returns the
    per-PE levels seen when the row head drives the bus. *)
val broadcast_config : Grid.t -> target:int -> Grid.config

val broadcast_row : Grid.t -> target:int -> bool array array

(** Workload builders for the benches: a stream of counting inputs
    (one configuration per word — the realistic "reconfigure every
    cycle" regime) and a rotating row broadcast.  With [phase_len]
    set, the stream is phase-structured: within each phase only a
    random [active_fraction] of the columns ever carries a 1, so only
    those columns' configurations change — the workload shape the
    paper's hyperreconfiguration argument is about.  Without it every
    word is uniformly random (the adversarial, structure-free case). *)
val counting_stream :
  ?phase_len:int ->
  ?active_fraction:float ->
  Hr_util.Rng.t ->
  bits:int ->
  words:int ->
  Grid.t * Mesh_tracer.program

val rotating_broadcast : Grid.t -> steps:int -> Mesh_tracer.program
