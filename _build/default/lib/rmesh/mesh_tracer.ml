open Hr_core
module Bitset = Hr_util.Bitset

type step = { config : Grid.config; label : string }

type program = step list

let bits_per_pe = 4

let width grid = Grid.rows grid * Grid.cols grid * bits_per_pe

let pe_base grid ~row ~col = ((row * Grid.cols grid) + col) * bits_per_pe

let space grid =
  let names = Array.make (width grid) "" in
  for r = 0 to Grid.rows grid - 1 do
    for c = 0 to Grid.cols grid - 1 do
      for k = 0 to bits_per_pe - 1 do
        names.(pe_base grid ~row:r ~col:c + k) <- Printf.sprintf "pe%d,%d.%d" r c k
      done
    done
  done;
  Switch_space.make ~names (width grid)

let encode grid config =
  Grid.validate grid config;
  let bits = ref (Bitset.create (width grid)) in
  for r = 0 to Grid.rows grid - 1 do
    for c = 0 to Grid.cols grid - 1 do
      let code = Partition.code config.(r).(c) in
      for k = 0 to bits_per_pe - 1 do
        if code land (1 lsl k) <> 0 then
          bits := Bitset.add !bits (pe_base grid ~row:r ~col:c + k)
      done
    done
  done;
  !bits

let field_diff grid prev next =
  let out = ref (Bitset.create (width grid)) in
  for r = 0 to Grid.rows grid - 1 do
    for c = 0 to Grid.cols grid - 1 do
      if not (Partition.equal prev.(r).(c) next.(r).(c)) then
        for k = 0 to bits_per_pe - 1 do
          out := Bitset.add !out (pe_base grid ~row:r ~col:c + k)
        done
    done
  done;
  !out

let trace ?(mode = `Field) ?initial grid program =
  let initial =
    match initial with Some c -> c | None -> Grid.uniform grid Partition.isolated
  in
  Grid.validate grid initial;
  let cfgs = Array.of_list (List.map (fun s -> s.config) program) in
  let prev i = if i = 0 then initial else cfgs.(i - 1) in
  let reqs =
    Array.mapi
      (fun i cfg ->
        match mode with
        | `Field -> field_diff grid (prev i) cfg
        | `Bit -> Bitset.symdiff (encode grid (prev i)) (encode grid cfg))
      cfgs
  in
  Trace.make (space grid) reqs

let mask_of_pes grid pes =
  List.fold_left
    (fun acc (r, c) ->
      let base = pe_base grid ~row:r ~col:c in
      List.fold_left (fun acc k -> Bitset.add acc (base + k)) acc
        (List.init bits_per_pe Fun.id))
    (Bitset.create (width grid))
    pes

let row_bands grid ~bands =
  if bands < 1 || bands > Grid.rows grid then
    invalid_arg "Mesh_tracer.row_bands: bad band count";
  let rows = Grid.rows grid and cols = Grid.cols grid in
  let base = rows / bands and extra = rows mod bands in
  let parts = ref [] in
  let start = ref 0 in
  for b = 0 to bands - 1 do
    let len = base + if b < extra then 1 else 0 in
    if len > 0 then begin
      let rs = List.init len (fun k -> !start + k) in
      let pes = List.concat_map (fun r -> List.init cols (fun c -> (r, c))) rs in
      parts :=
        {
          Task_split.name = Printf.sprintf "rows%d-%d" !start (!start + len - 1);
          mask = mask_of_pes grid pes;
        }
        :: !parts;
      start := !start + len
    end
  done;
  Array.of_list (List.rev !parts)

let quadrants grid =
  let rows = Grid.rows grid and cols = Grid.cols grid in
  if rows < 2 || cols < 2 then
    invalid_arg "Mesh_tracer.quadrants: need at least a 2x2 mesh";
  let rh = (rows + 1) / 2 and ch = (cols + 1) / 2 in
  let all_pes =
    List.concat_map (fun r -> List.init cols (fun c -> (r, c))) (List.init rows Fun.id)
  in
  let quadrant name keep =
    { Task_split.name; mask = mask_of_pes grid (List.filter keep all_pes) }
  in
  [|
    quadrant "NW" (fun (r, c) -> r < rh && c < ch);
    quadrant "NE" (fun (r, c) -> r < rh && c >= ch);
    quadrant "SW" (fun (r, c) -> r >= rh && c < ch);
    quadrant "SE" (fun (r, c) -> r >= rh && c >= ch);
  |]
