(** The reconfigurable-mesh fabric: bus resolution and signalling.

    An R×C grid of PEs; adjacent PEs' facing ports are wired (E of
    (r,c) to W of (r,c+1), S of (r,c) to N of (r+1,c)).  A
    configuration assigns every PE a {!Partition.t}; the buses of the
    configured mesh are the connected components of ports under
    "fused within a PE" ∪ "wired between neighbours".  Signalling is
    wired-OR: a bus carries 1 iff some PE drives 1 onto it — the model
    behind the classic constant-time mesh algorithms. *)

type t

(** [create ~rows ~cols] — both ≥ 1. *)
val create : rows:int -> cols:int -> t

val rows : t -> int
val cols : t -> int

(** A configuration: [config.(r).(c)] is PE (r,c)'s partition. *)
type config = Partition.t array array

(** [uniform t p] — every PE in partition [p]. *)
val uniform : t -> Partition.t -> config

(** [validate t config] checks dimensions; raises [Invalid_argument]. *)
val validate : t -> config -> unit

(** Resolved buses of one configuration. *)
type buses

(** [resolve t config] computes the connected components. *)
val resolve : t -> config -> buses

(** [bus_id buses ~row ~col port] — the bus this port belongs to
    (stable within one [resolve]). *)
val bus_id : buses -> row:int -> col:int -> Port.t -> int

(** [num_buses buses]. *)
val num_buses : buses -> int

(** [signals buses ~drivers] — the wired-OR value per bus, given the
    ports being driven high. *)
val signals : buses -> drivers:(int * int * Port.t) list -> bool array

(** [read buses values ~row ~col port] — the level this port sees. *)
val read : buses -> bool array -> row:int -> col:int -> Port.t -> bool
