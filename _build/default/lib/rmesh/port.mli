(** The four ports of a reconfigurable-mesh processing element. *)

type t = N | E | S | W

(** [all] in the fixed order N, E, S, W. *)
val all : t list

(** [index t] is the port's position in {!all} (0..3). *)
val index : t -> int

(** [of_index i] inverts {!index}; raises [Invalid_argument] outside
    0..3. *)
val of_index : int -> t

(** [opposite t] is the port a neighbour connects to: N↔S, E↔W. *)
val opposite : t -> t

(** [pp] prints ["N"], ["E"], ["S"] or ["W"]. *)
val pp : Format.formatter -> t -> unit
