(** Plain-text chart primitives for the experiment harness. *)

(** [bar ~width ~max_value v] renders a horizontal bar scaled to
    [width] characters. *)
val bar : width:int -> max_value:int -> int -> string

(** [sparkline ~max_value vs] maps values to the eight block heights
    [" ▁▂▃▄▅▆▇█"]-style using ASCII [" .:-=+*#%@"] so the output stays
    7-bit clean. *)
val sparkline : max_value:int -> int array -> string

(** [heat_char ~max_value v] is the single sparkline character for
    [v]. *)
val heat_char : max_value:int -> int -> char

(** [bool_row cells] renders ['#'] / ['.'] per flag — the Fig. 3
    idiom. *)
val bool_row : bool array -> string

(** [chunked ~width s] splits a long row string into lines of at most
    [width] characters, prefixing each chunk with its start index. *)
val chunked : width:int -> string -> string list
