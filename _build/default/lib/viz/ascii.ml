let ramp = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let heat_char ~max_value v =
  if max_value <= 0 then ramp.(0)
  else
    let v = max 0 (min v max_value) in
    let idx = (v * (Array.length ramp - 1) + (max_value / 2)) / max_value in
    ramp.(idx)

let sparkline ~max_value vs =
  String.init (Array.length vs) (fun i -> heat_char ~max_value vs.(i))

let bar ~width ~max_value v =
  if width <= 0 then ""
  else if max_value <= 0 then String.make width ' '
  else
    let filled = max 0 (min width (v * width / max_value)) in
    String.make filled '#' ^ String.make (width - filled) ' '

let bool_row cells =
  String.init (Array.length cells) (fun i -> if cells.(i) then '#' else '.')

let chunked ~width s =
  if width <= 0 then invalid_arg "Ascii.chunked: width must be positive";
  let len = String.length s in
  let rec go start acc =
    if start >= len then List.rev acc
    else
      let chunk_len = min width (len - start) in
      let line = Printf.sprintf "%4d| %s" start (String.sub s start chunk_len) in
      go (start + width) (line :: acc)
  in
  if len = 0 then [] else go 0 []
