open Hr_core

(** Text renderings of the paper's figures.

    Fig. 2 shows, per unit and per step, how much of the unit is
    available in the current hypercontext, with the
    hyperreconfiguration instants marked; Fig. 3 shows which tasks
    perform a partial hyperreconfiguration at each hyperreconfiguration
    step. *)

(** [fig2 ts bp] renders one Fig. 2 panel for the plan [bp] over the
    instance [ts]: per task a heat row (hypercontext size / local
    switches, using the sparkline ramp) and a marker row of
    hyperreconfiguration instants ([^]). *)
val fig2 : Task_set.t -> Breakpoints.t -> string

(** [fig2_units ts bp ~unit_masks] — the single-task variant of Fig. 2:
    the one task's hypercontext is broken down per unit ([unit_masks]
    gives name and bit mask of each unit within the task's local
    space), showing which units' switches the hypercontext keeps
    available. *)
val fig2_units :
  Task_set.t -> Breakpoints.t -> unit_masks:(string * Hr_util.Bitset.t) list -> string

(** [fig3 ts bp] renders Fig. 3: one row per task, one column per
    machine step at which {e some} task hyperreconfigures; ['#'] =
    partial hyperreconfiguration, ['.'] = no-hyperreconfiguration
    operation. *)
val fig3 : Task_set.t -> Breakpoints.t -> string

(** [fig2_paper ts bp] renders Fig. 2 with the paper's exact
    three-state legend, per task and step:
    ['#'] = switch(es) of the task in use by this step's requirement,
    ['+'] = available in the hypercontext but unused this step,
    ['.'] = not available in the current hypercontext.  One row per
    task shows the dominant state of its switches (use / idle /
    unavailable fractions collapse to the majority for a single-char
    cell), plus a ['^'] marker row for hyperreconfiguration
    instants. *)
val fig2_paper : Task_set.t -> Breakpoints.t -> string

(** [cost_series ?params oracle bp] renders the per-step total cost
    series (H_i + R_i) as a chunked sparkline. *)
val cost_series : ?params:Sync_cost.params -> Interval_cost.t -> Breakpoints.t -> string
