lib/viz/timeline.mli: Breakpoints Hr_core Interval_cost
