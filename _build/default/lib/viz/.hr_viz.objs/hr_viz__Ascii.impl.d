lib/viz/ascii.ml: Array List Printf String
