lib/viz/figures.ml: Array Ascii Breakpoints Buffer Hr_core Hr_util List Plan Printf String Switch_space Sync_cost Task_set Trace
