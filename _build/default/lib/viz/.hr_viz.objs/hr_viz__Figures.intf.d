lib/viz/figures.mli: Breakpoints Hr_core Hr_util Interval_cost Sync_cost Task_set
