lib/viz/timeline.ml: Array Ascii Breakpoints Buffer Hr_core Interval_cost List Printf String Sync_cost
