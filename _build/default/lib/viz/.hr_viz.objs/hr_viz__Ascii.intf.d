lib/viz/ascii.mli:
