open Hr_core
module Bitset = Hr_util.Bitset

let buffer_add_rows buf rows =
  List.iter
    (fun (label, row) ->
      List.iter
        (fun line -> Buffer.add_string buf (Printf.sprintf "%-6s %s\n" label line))
        (Ascii.chunked ~width:100 row))
    rows

let hypercontexts_per_step ts bp =
  let plan = Plan.of_breakpoints ts bp in
  let m = Task_set.num_tasks ts and n = Task_set.steps ts in
  Array.init m (fun j -> Array.init n (fun i -> Plan.hypercontext_at plan j i))

let fig2 ts bp =
  let hcs = hypercontexts_per_step ts bp in
  let m = Task_set.num_tasks ts and n = Task_set.steps ts in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "hypercontext occupancy per task (darker = more switches available)\n";
  let rows =
    List.concat
      (List.init m (fun j ->
           let task = Task_set.get ts j in
           let width = Switch_space.size (Trace.space task.Task_set.trace) in
           let sizes = Array.map Bitset.cardinal hcs.(j) in
           let heat = Ascii.sparkline ~max_value:width sizes in
           let marks =
             String.init n (fun i -> if Breakpoints.is_break bp j i then '^' else ' ')
           in
           [ (task.Task_set.name, heat); ("", marks) ]))
  in
  buffer_add_rows buf rows;
  Buffer.contents buf

let fig2_units ts bp ~unit_masks =
  if Task_set.num_tasks ts <> 1 then
    invalid_arg "Figures.fig2_units: expects the single-task split";
  let hcs = (hypercontexts_per_step ts bp).(0) in
  let n = Task_set.steps ts in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "single task: per-unit share of the hypercontext (darker = more of the \
     unit's switches available)\n";
  let rows =
    List.map
      (fun (name, mask) ->
        let total = Bitset.cardinal mask in
        let sizes =
          Array.map (fun hc -> Bitset.cardinal (Bitset.inter hc mask)) hcs
        in
        (name, Ascii.sparkline ~max_value:total sizes))
      unit_masks
    @ [
        ( "",
          String.init n (fun i -> if Breakpoints.is_break bp 0 i then '^' else ' ') );
      ]
  in
  buffer_add_rows buf rows;
  Buffer.contents buf

let fig3 ts bp =
  let m = Task_set.num_tasks ts in
  let cols = Breakpoints.break_columns bp in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "partial hyperreconfigurations (%d hyperreconfiguration steps; # = \
        hyperreconfiguration, . = no-op)\n"
       (List.length cols));
  for j = 0 to m - 1 do
    let row =
      Array.of_list (List.map (fun i -> Breakpoints.is_break bp j i) cols)
    in
    let name = (Task_set.get ts j).Task_set.name in
    Buffer.add_string buf (Printf.sprintf "%-6s %s\n" name (Ascii.bool_row row))
  done;
  Buffer.contents buf

let fig2_paper ts bp =
  let hcs = hypercontexts_per_step ts bp in
  let m = Task_set.num_tasks ts and n = Task_set.steps ts in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "per task and step: # = in use, + = available but unused, . = not available\n";
  let rows =
    List.concat
      (List.init m (fun j ->
           let task = Task_set.get ts j in
           let row =
             String.init n (fun i ->
                 let hc = hcs.(j).(i) in
                 let used = Trace.req task.Task_set.trace i in
                 let avail = Bitset.cardinal hc in
                 if avail = 0 then '.'
                 else if 2 * Bitset.cardinal used >= avail then '#'
                 else '+')
           in
           let marks =
             String.init n (fun i -> if Breakpoints.is_break bp j i then '^' else ' ')
           in
           [ (task.Task_set.name, row); ("", marks) ]))
  in
  buffer_add_rows buf rows;
  Buffer.contents buf

let cost_series ?params oracle bp =
  let steps = Sync_cost.eval_per_step ?params oracle bp in
  let totals = Array.map (fun (h, r) -> h + r) steps in
  let max_value = Array.fold_left max 1 totals in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "per-step cost (max %d, darker = costlier)\n" max_value);
  List.iter
    (fun line -> Buffer.add_string buf (line ^ "\n"))
    (Ascii.chunked ~width:100 (Ascii.sparkline ~max_value totals));
  Buffer.contents buf
