open Hr_core

type t = {
  m : int;
  n : int;
  step_duration : int array;  (* H_i + R_i per step *)
  task_busy : int array array;  (* per task, per step: own work *)
}

let make (oracle : Interval_cost.t) bp =
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  let per_step = Sync_cost.eval_per_step oracle bp in
  let reconf = Sync_cost.step_reconf_costs oracle bp in
  let task_busy =
    Array.init m (fun j ->
        Array.init n (fun i ->
            let hyper =
              if Breakpoints.is_break bp j i then oracle.Interval_cost.v.(j) else 0
            in
            hyper + reconf.(j).(i)))
  in
  {
    m;
    n;
    step_duration = Array.map (fun (h, r) -> h + r) per_step;
    task_busy;
  }

let machine_time t = Array.fold_left ( + ) 0 t.step_duration

let busy t = Array.map (Array.fold_left ( + ) 0) t.task_busy

let utilization t =
  let total = machine_time t in
  busy t
  |> Array.map (fun b ->
         if total = 0 then 0. else float_of_int b /. float_of_int total)

let bottleneck t =
  let b = busy t in
  let best = ref 0 in
  Array.iteri (fun j v -> if v > b.(!best) then best := j) b;
  !best

let render ?names t =
  let name j =
    match names with
    | Some ns when j < Array.length ns -> ns.(j)
    | _ -> Printf.sprintf "T%d" (j + 1)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "port occupancy per task and step (darker = busier share of the step)\n";
  let u = utilization t in
  for j = 0 to t.m - 1 do
    let row =
      String.init t.n (fun i ->
          Ascii.heat_char ~max_value:(max 1 t.step_duration.(i)) t.task_busy.(j).(i))
    in
    List.iter
      (fun line -> Buffer.add_string buf (Printf.sprintf "%-6s %s\n" (name j) line))
      (Ascii.chunked ~width:100 row);
    Buffer.add_string buf
      (Printf.sprintf "%-6s utilization %.0f%%\n" "" (100. *. u.(j)))
  done;
  Buffer.contents buf
