open Hr_core

(** Per-task busy/idle analysis of a fully synchronized plan.

    On a task-parallel fully synchronized machine every step lasts as
    long as its slowest participant (the max terms of §4.2); the other
    tasks' reconfiguration ports idle for the difference.  This module
    computes, per task, the busy time (own hyperreconfiguration +
    reconfiguration bits) against the machine time (the per-step
    maxima), yielding the utilization profile that explains {e why} the
    MUX task dominates the paper's experiment, and renders a Gantt-like
    ASCII strip. *)

type t

(** [make oracle bp] analyzes the plan. *)
val make : Interval_cost.t -> Breakpoints.t -> t

(** [machine_time t] is the §4.2 total — equal to
    [Sync_cost.eval oracle bp]. *)
val machine_time : t -> int

(** [busy t] is each task's own total (hyper)reconfiguration work. *)
val busy : t -> int array

(** [utilization t] is [busy / machine_time] per task, in [0, 1]. *)
val utilization : t -> float array

(** [bottleneck t] is the index of the busiest task. *)
val bottleneck : t -> int

(** [render ?names t] draws one row per task: at each step, a heat
    character for the fraction of the step's duration the task is
    busy. *)
val render : ?names:string array -> t -> string
