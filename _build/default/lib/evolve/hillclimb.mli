(** First-improvement hill climbing over an explicit neighborhood.

    Deterministic given the neighbor enumeration order; used as the
    cheapest local-search baseline and as a polishing pass after the
    GA. *)

type 'g problem = {
  cost : 'g -> int;
  neighbors : 'g -> 'g Seq.t;  (** finite neighborhood of a genome *)
}

type 'g result = { best : 'g; best_cost : int; evaluations : int; rounds : int }

(** [run ?max_rounds problem ~init] repeatedly moves to the first
    strictly improving neighbor until a local optimum (or [max_rounds])
    is reached. *)
val run : ?max_rounds:int -> 'g problem -> init:'g -> 'g result
