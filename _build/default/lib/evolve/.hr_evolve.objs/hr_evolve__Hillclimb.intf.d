lib/evolve/hillclimb.mli: Seq
