lib/evolve/ga.ml: Array Hr_util List
