lib/evolve/ga.mli: Hr_util
