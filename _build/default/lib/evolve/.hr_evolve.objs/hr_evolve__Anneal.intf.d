lib/evolve/anneal.mli: Hr_util
