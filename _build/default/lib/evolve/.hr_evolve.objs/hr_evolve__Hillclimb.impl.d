lib/evolve/hillclimb.ml: Seq
