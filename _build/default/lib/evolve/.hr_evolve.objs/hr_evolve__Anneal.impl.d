lib/evolve/anneal.ml: Hr_util
