(** Generic simulated annealing (cost minimization).

    Geometric cooling with Metropolis acceptance; an alternative to
    {!Ga} for the multi-task breakpoint search, included both as an
    ablation baseline and because it often matches the GA on small
    instances at a fraction of the evaluations. *)

type 'g problem = {
  cost : 'g -> int;
  neighbor : Hr_util.Rng.t -> 'g -> 'g;  (** a random small perturbation *)
}

type config = {
  steps : int;  (** total annealing steps *)
  t_start : float;  (** initial temperature *)
  t_end : float;  (** final temperature (> 0) *)
  restarts : int;  (** independent restarts; the best result wins *)
}

val default_config : config

type 'g result = { best : 'g; best_cost : int; evaluations : int }

(** [run ?config rng problem ~init] anneals from [init].  Deterministic
    for a fixed [rng] seed. *)
val run : ?config:config -> Hr_util.Rng.t -> 'g problem -> init:'g -> 'g result
