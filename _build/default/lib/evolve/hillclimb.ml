type 'g problem = { cost : 'g -> int; neighbors : 'g -> 'g Seq.t }

type 'g result = { best : 'g; best_cost : int; evaluations : int; rounds : int }

let run ?(max_rounds = max_int) problem ~init =
  let evaluations = ref 0 in
  let eval g =
    incr evaluations;
    problem.cost g
  in
  let rec climb g cost rounds =
    if rounds >= max_rounds then (g, cost, rounds)
    else
      let better =
        Seq.find_map
          (fun n ->
            let c = eval n in
            if c < cost then Some (n, c) else None)
          (problem.neighbors g)
      in
      match better with
      | Some (n, c) -> climb n c (rounds + 1)
      | None -> (g, cost, rounds)
  in
  let best, best_cost, rounds = climb init (eval init) 0 in
  { best; best_cost; evaluations = !evaluations; rounds }
