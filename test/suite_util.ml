(* Rng determinism, Stats, Tablefmt, the domain pool, Cli enums. *)

module Rng = Hr_util.Rng
module Stats = Hr_util.Stats
module Tablefmt = Hr_util.Tablefmt
module Pool = Hr_util.Pool
module Budget = Hr_util.Budget
module Cli = Hr_util.Cli

let check = Alcotest.check
let int = Alcotest.int

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check int "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 10 (fun _ -> Rng.bits64 a) in
  let ys = List.init 10 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-3) 3 in
    if v < -3 || v > 3 then Alcotest.failf "out of range: %d" v
  done

let test_rng_uniformity () =
  (* Coarse sanity: 6000 draws over 6 buckets, each within ±25 %. *)
  let rng = Rng.create 11 in
  let buckets = Array.make 6 0 in
  for _ = 1 to 6000 do
    let v = Rng.int rng 6 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c -> if c < 750 || c > 1250 then Alcotest.failf "bucket %d has %d" i c)
    buckets

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    if f < 0. || f >= 1. then Alcotest.failf "float out of range: %f" f
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = List.init 5 (fun _ -> Rng.bits64 a) in
  let ys = List.init 5 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "independent streams" true (xs <> ys)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 9 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_stats_summary () =
  let s = Stats.summarize [| 1.; 2.; 3.; 4. |] in
  check int "n" 4 s.Stats.n;
  check (Alcotest.float 1e-9) "mean" 2.5 s.Stats.mean;
  check (Alcotest.float 1e-9) "median" 2.5 s.Stats.median;
  check (Alcotest.float 1e-9) "min" 1. s.Stats.min;
  check (Alcotest.float 1e-9) "max" 4. s.Stats.max

let test_stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  check (Alcotest.float 1e-9) "p0" 10. (Stats.percentile xs 0.);
  check (Alcotest.float 1e-9) "p50" 30. (Stats.percentile xs 50.);
  check (Alcotest.float 1e-9) "p100" 50. (Stats.percentile xs 100.);
  check (Alcotest.float 1e-9) "p25" 20. (Stats.percentile xs 25.)

let test_stats_stddev () =
  check (Alcotest.float 1e-9) "constant" 0. (Stats.stddev [| 5.; 5.; 5. |]);
  check (Alcotest.float 1e-9) "spread" 2. (Stats.stddev [| 2.; 6.; 2.; 6. |])

let test_stats_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (Stats.mean [||]))

let test_tablefmt_alignment () =
  let out =
    Tablefmt.render ~header:[ "name"; "cost" ]
      [ [ "alpha"; "12" ]; [ "b"; "345" ] ]
  in
  let lines = String.split_on_char '\n' out in
  check int "4 lines" 4 (List.length lines);
  (* Numeric column is right-aligned. *)
  Alcotest.(check bool) "right aligned" true
    (String.length (List.nth lines 2) = String.length (List.nth lines 3))

let test_tablefmt_arity_check () =
  Alcotest.check_raises "ragged row"
    (Invalid_argument "Tablefmt.render: row 0 has 1 cells, expected 2") (fun () ->
      ignore (Tablefmt.render ~header:[ "a"; "b" ] [ [ "x" ] ]))

(* [with_pool] guards the ~128-domain process cap: every pool a test
   creates is shut down before the next test runs. *)
let with_pool ?workers f =
  let pool = Pool.create ?workers () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_map_matches_sequential () =
  (* Elementwise identity with Array.map across sizes × worker counts
     × seeds, including n < workers and chunk counts > n. *)
  let rng = Rng.create 104729 in
  List.iter
    (fun workers ->
      with_pool ~workers (fun pool ->
          List.iter
            (fun n ->
              let seed = Rng.int rng 1_000_000 in
              let arr = Array.init n (fun i -> seed + (31 * i)) in
              let f x = (x * x mod 7919) - (x mod 13) in
              let expected = Array.map f arr in
              Alcotest.(check (array int))
                (Printf.sprintf "workers=%d n=%d" workers n)
                expected (Pool.map pool f arr);
              Alcotest.(check (array int))
                (Printf.sprintf "workers=%d n=%d chunks=%d" workers n (n + 3))
                expected
                (Pool.map ~chunks:(n + 3) pool f arr))
            [ 0; 1; 2; 3; 7; 64; 1000 ]))
    [ 1; 2; 4 ]

let test_par_map_matches_sequential () =
  let rng = Rng.create 7919 in
  List.iter
    (fun domains ->
      List.iter
        (fun n ->
          let seed = Rng.int rng 1_000_000 in
          let arr = Array.init n (fun i -> seed + i) in
          let f x = x * 17 mod 1009 in
          Alcotest.(check (array int))
            (Printf.sprintf "domains=%d n=%d" domains n)
            (Array.map f arr)
            (Hr_util.Par.map_array ~domains f arr))
        [ 0; 1; 5; 128; 513 ])
    [ 1; 2; 8 ]

exception Boom of int

let test_pool_map_exception_once () =
  (* A failing element re-raises exactly once, and it is the lowest
     failing index — the same element sequential Array.map would have
     died on. *)
  with_pool ~workers:3 (fun pool ->
      let raised = ref 0 in
      (try
         ignore
           (Pool.map ~chunks:8 pool
              (fun i -> if i mod 10 = 7 then raise (Boom i) else i)
              (Array.init 100 Fun.id))
       with Boom i ->
         incr raised;
         Alcotest.(check int) "lowest failing index" 7 i);
      Alcotest.(check int) "raised exactly once" 1 !raised)

let test_pool_survives_failure () =
  (* Exception containment: the same pool instance serves the next
     batch after a failing one, with intact results. *)
  with_pool ~workers:2 (fun pool ->
      for round = 1 to 3 do
        (try ignore (Pool.map pool (fun _ -> raise (Boom round)) [| 1; 2; 3 |])
         with Boom r -> Alcotest.(check int) "round's own exn" round r);
        let arr = Array.init 50 (fun i -> i + round) in
        Alcotest.(check (array int))
          (Printf.sprintf "healthy after failure %d" round)
          (Array.map succ arr)
          (Pool.map pool succ arr)
      done)

let test_pool_nested_map () =
  (* A task running on the pool may itself call Pool.map on the same
     pool (solver races inside Batch do exactly this); the caller-helps
     rule keeps it deadlock-free even with every worker busy. *)
  with_pool ~workers:2 (fun pool ->
      let inner i = Pool.map pool (fun j -> (10 * i) + j) (Array.init 6 Fun.id) in
      let out = Pool.map pool inner (Array.init 8 Fun.id) in
      Array.iteri
        (fun i row ->
          Alcotest.(check (array int))
            (Printf.sprintf "nested row %d" i)
            (Array.init 6 (fun j -> (10 * i) + j))
            row)
        out)

let test_pool_iter_chunks_covers () =
  with_pool ~workers:3 (fun pool ->
      let n = 997 in
      let hits = Array.make n 0 in
      (* [f lo hi] gets inclusive bounds. *)
      Pool.iter_chunks pool
        (fun lo hi ->
          for i = lo to hi do
            hits.(i) <- hits.(i) + 1
          done)
        n;
      Alcotest.(check (array int)) "each index covered once" (Array.make n 1) hits)

let test_pool_shutdown_degrades () =
  let pool = Pool.create ~workers:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.(check (array int))
    "sequential after shutdown" [| 2; 4; 6 |]
    (Pool.map pool (fun x -> 2 * x) [| 1; 2; 3 |])

let test_pool_is_stopped () =
  let pool = Pool.create ~workers:2 () in
  Alcotest.(check bool) "live pool not stopped" false (Pool.is_stopped pool);
  Pool.shutdown pool;
  Alcotest.(check bool) "stopped after shutdown" true (Pool.is_stopped pool)

let test_pool_default_recreated_after_shutdown () =
  (* Regression: the memoized default pool used to be handed out even
     after its shutdown, silently degrading every later caller to
     sequential execution for the rest of the process. *)
  let first = Pool.default () in
  Pool.shutdown first;
  let second = Pool.default () in
  Alcotest.(check bool) "a fresh pool replaces the stopped one" true
    (first != second);
  Alcotest.(check bool) "the replacement is live" false (Pool.is_stopped second);
  Alcotest.(check (array int))
    "the replacement still computes" [| 2; 4; 6 |]
    (Pool.map second (fun x -> 2 * x) [| 1; 2; 3 |])

let test_budget_earliest () =
  Alcotest.(check bool)
    "unlimited of unlimited" false
    (Budget.is_limited (Budget.earliest Budget.unlimited Budget.unlimited));
  let five = Budget.of_deadline_ms 5000 in
  let left b = Budget.remaining_ms (Budget.earliest five b) in
  Alcotest.(check bool)
    "deadline beats unlimited" true
    (Budget.is_limited (Budget.earliest five Budget.unlimited)
    && left Budget.unlimited <= 5000.);
  let l = left (Budget.of_deadline_ms 2000) in
  Alcotest.(check bool) "min deadline wins" true (l <= 2000. && l > 1000.)

let test_cli_enum () =
  let options = [ ("single", 1); ("four", 4) ] in
  Alcotest.(check int) "known" 4 (Cli.enum_exn ~what:"split" options "four");
  (match Cli.enum ~what:"split" options "bogus" with
  | Ok _ -> Alcotest.fail "accepted an unknown value"
  | Error msg ->
      Alcotest.(check string) "error lists the accepted values"
        "unknown split \"bogus\" (expected one of: single, four)" msg);
  Alcotest.check_raises "enum_exn raises Failure"
    (Failure "unknown split \"bogus\" (expected one of: single, four)") (fun () ->
      ignore (Cli.enum_exn ~what:"split" options "bogus"))

let tests =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_different_seeds;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int_in" `Quick test_rng_int_in;
    Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "stats empty" `Quick test_stats_empty_raises;
    Alcotest.test_case "tablefmt alignment" `Quick test_tablefmt_alignment;
    Alcotest.test_case "tablefmt arity" `Quick test_tablefmt_arity_check;
    Alcotest.test_case "pool map = sequential" `Quick test_pool_map_matches_sequential;
    Alcotest.test_case "par map = sequential" `Quick test_par_map_matches_sequential;
    Alcotest.test_case "pool exn raised once" `Quick test_pool_map_exception_once;
    Alcotest.test_case "pool survives failure" `Quick test_pool_survives_failure;
    Alcotest.test_case "pool nested map" `Quick test_pool_nested_map;
    Alcotest.test_case "pool iter_chunks covers" `Quick test_pool_iter_chunks_covers;
    Alcotest.test_case "pool shutdown degrades" `Quick test_pool_shutdown_degrades;
    Alcotest.test_case "pool is_stopped" `Quick test_pool_is_stopped;
    Alcotest.test_case "pool default recreated after shutdown" `Quick
      test_pool_default_recreated_after_shutdown;
    Alcotest.test_case "budget earliest" `Quick test_budget_earliest;
    Alcotest.test_case "cli enum strict" `Quick test_cli_enum;
  ]
