(* Single-task optimal DP: unit cases plus QCheck optimality against
   brute-force enumeration. *)

open Hr_core
module Bitset = Hr_util.Bitset

let check = Alcotest.check
let int = Alcotest.int

let space4 = Switch_space.make 4

let test_single_block_when_v_huge () =
  (* An enormous hyperreconfiguration cost forces one block. *)
  let trace = Trace.of_lists space4 [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  let r, hcs = St_opt.solve_trace ~v:1000 trace in
  Alcotest.(check (list int)) "one break" [ 0 ] r.St_opt.breaks;
  check int "cost" (1000 + (3 * 3)) r.St_opt.cost;
  check int "one hypercontext" 1 (List.length hcs);
  check int "hc is union" 3 (Bitset.cardinal (List.hd hcs))

let test_break_every_step_when_v_zero () =
  (* Free hyperreconfiguration: every step gets its minimal hc. *)
  let trace = Trace.of_lists space4 [ [ 0; 1 ]; [ 2 ]; [ 3 ] ] in
  let r, _ = St_opt.solve_trace ~v:0 trace in
  check int "cost = sum of req sizes" (2 + 1 + 1) r.St_opt.cost;
  Alcotest.(check (list int)) "breaks everywhere" [ 0; 1; 2 ] r.St_opt.breaks

let test_phase_structure_detected () =
  (* Two clean phases: switches {0,1} then {2,3}.  With v=2 the DP must
     split exactly at the phase boundary. *)
  let trace =
    Trace.of_lists space4 [ [ 0 ]; [ 1 ]; [ 0; 1 ]; [ 2 ]; [ 3 ]; [ 2; 3 ] ]
  in
  let r, hcs = St_opt.solve_trace ~v:2 trace in
  Alcotest.(check (list int)) "phase split" [ 0; 3 ] r.St_opt.breaks;
  check int "cost" (2 + (2 * 3) + 2 + (2 * 3)) r.St_opt.cost;
  Alcotest.(check (list int)) "hc1" [ 0; 1 ] (Bitset.to_list (List.nth hcs 0));
  Alcotest.(check (list int)) "hc2" [ 2; 3 ] (Bitset.to_list (List.nth hcs 1))

let test_default_v_is_universe_size () =
  let trace = Trace.of_lists space4 [ [ 0 ] ] in
  let r, _ = St_opt.solve_trace trace in
  check int "v=4 plus |{0}|" 5 r.St_opt.cost

let test_cost_of_breaks_matches_dp () =
  let trace =
    Trace.of_lists space4 [ [ 0 ]; [ 1 ]; [ 0; 1 ]; [ 2 ]; [ 3 ]; [ 2; 3 ] ]
  in
  let ru = Range_union.make trace in
  let step_cost lo hi = Range_union.size ru lo hi in
  let r = St_opt.solve ~v:2 ~n:6 ~step_cost in
  check int "re-evaluated"
    (St_opt.cost_of_breaks ~v:2 ~n:6 ~step_cost r.St_opt.breaks)
    r.St_opt.cost

let test_cost_of_breaks_validation () =
  let step_cost _ _ = 1 in
  Alcotest.check_raises "must start at 0"
    (Invalid_argument "St_opt: first breakpoint must be step 0") (fun () ->
      ignore (St_opt.cost_of_breaks ~v:1 ~n:3 ~step_cost [ 1 ]));
  Alcotest.check_raises "ascending"
    (Invalid_argument "St_opt: breakpoints not strictly ascending/in range")
    (fun () -> ignore (St_opt.cost_of_breaks ~v:1 ~n:3 ~step_cost [ 0; 2; 2 ]))

let qcheck_dp_optimal =
  Tutil.prop "St_opt matches brute force"
    (Tutil.gen_st_instance ~max_n:9 ~max_width:5)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let ru = Range_union.make trace in
      let step_cost lo hi = Range_union.size ru lo hi in
      let n = Trace.length trace in
      let dp = St_opt.solve ~v:inst.Tutil.v ~n ~step_cost in
      let brute = Brute.single ~v:inst.Tutil.v ~n ~step_cost in
      dp.St_opt.cost = brute.St_opt.cost)

let qcheck_plan_valid =
  Tutil.prop "St_opt plan satisfies every requirement"
    (Tutil.gen_st_instance ~max_n:12 ~max_width:6)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let r, hcs = St_opt.solve_trace ~v:inst.Tutil.v trace in
      let bp =
        Breakpoints.of_rows ~m:1 ~n:(Trace.length trace) [| r.St_opt.breaks |]
      in
      let plan =
        Plan.make
          [|
            List.map2
              (fun (lo, hi) hc -> { Plan.lo; hi; hc })
              (Breakpoints.intervals bp 0) hcs;
          |]
      in
      match Plan.validate plan (Task_set.single ~name:"t" ~v:inst.Tutil.v trace) with
      | Ok () -> true
      | Error _ -> false)

let qcheck_dp_no_worse_than_heuristics =
  Tutil.prop "St_opt <= never/every-step"
    (Tutil.gen_st_instance ~max_n:15 ~max_width:6)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let ru = Range_union.make trace in
      let step_cost lo hi = Range_union.size ru lo hi in
      let n = Trace.length trace in
      let dp = St_opt.solve ~v:inst.Tutil.v ~n ~step_cost in
      let never = St_opt.cost_of_breaks ~v:inst.Tutil.v ~n ~step_cost [ 0 ] in
      let every =
        St_opt.cost_of_breaks ~v:inst.Tutil.v ~n ~step_cost (List.init n Fun.id)
      in
      dp.St_opt.cost <= never && dp.St_opt.cost <= every)

let qcheck_bounded_matches_brute =
  Tutil.prop "solve_bounded matches bounded brute force"
    (Tutil.gen_st_instance ~max_n:9 ~max_width:5)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let ru = Range_union.make trace in
      let step_cost lo hi = Range_union.size ru lo hi in
      let n = Trace.length trace in
      let v = inst.Tutil.v in
      List.for_all
        (fun max_blocks ->
          let r = St_opt.solve_bounded ~v ~n ~step_cost ~max_blocks in
          (* Enumerate every plan with at most [max_blocks] blocks: step
             0 always breaks; each later step may or may not. *)
          let best = ref max_int in
          let rec go i breaks count =
            if count <= max_blocks then
              if i = n then begin
                let cost = St_opt.cost_of_breaks ~v ~n ~step_cost (List.rev breaks) in
                if cost < !best then best := cost
              end
              else begin
                go (i + 1) (i :: breaks) (count + 1);
                go (i + 1) breaks count
              end
          in
          go 1 [ 0 ] 1;
          List.length r.St_opt.breaks <= max_blocks
          && St_opt.cost_of_breaks ~v ~n ~step_cost r.St_opt.breaks = r.St_opt.cost
          && r.St_opt.cost = !best)
        [ 1; 2; 3; n ])

let tests =
  [
    Alcotest.test_case "one block when v huge" `Quick test_single_block_when_v_huge;
    Alcotest.test_case "every step when v zero" `Quick test_break_every_step_when_v_zero;
    Alcotest.test_case "phase structure" `Quick test_phase_structure_detected;
    Alcotest.test_case "default v" `Quick test_default_v_is_universe_size;
    Alcotest.test_case "cost_of_breaks consistent" `Quick test_cost_of_breaks_matches_dp;
    Alcotest.test_case "cost_of_breaks validation" `Quick test_cost_of_breaks_validation;
    qcheck_dp_optimal;
    qcheck_plan_valid;
    qcheck_dp_no_worse_than_heuristics;
    qcheck_bounded_matches_brute;
  ]
