(* Sparse oracle rung: Occ_index vs Range_union conformance, trace
   segment round-trips, dense/sparse plan bit-identity, the large-trace
   generator, and the new memoize/sparse telemetry counters. *)

open Hr_core
module Bitset = Hr_util.Bitset
module Rng = Hr_util.Rng
module W = Hr_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* Random trace with run-length structure: geometric dwell per
   requirement so segments are non-trivial but plentiful. *)
let random_trace rng ~width ~n =
  let space = Switch_space.make width in
  let reqs = Array.make n (Switch_space.empty space) in
  let i = ref 0 in
  while !i < n do
    let req = Bitset.create width in
    for s = 0 to width - 1 do
      if Rng.int rng 3 = 0 then ignore (Bitset.add req s)
    done;
    let dwell = 1 + Rng.int rng 5 in
    let stop = min n (!i + dwell) in
    while !i < stop do
      reqs.(!i) <- req;
      incr i
    done
  done;
  Trace.make space reqs

let traces_equal a b =
  Trace.length a = Trace.length b
  && Switch_space.size (Trace.space a) = Switch_space.size (Trace.space b)
  &&
  let ok = ref true in
  for i = 0 to Trace.length a - 1 do
    if not (Bitset.equal (Trace.req a i) (Trace.req b i)) then ok := false
  done;
  !ok

(* Occ_index.size must agree with Range_union.size on EVERY (lo,hi) —
   the widths straddle one bitset word (48) and several (130) so both
   the short-span union path and the occurrence-list path run. *)
let test_occ_matches_range_union () =
  let rng = Rng.create 41 in
  List.iter
    (fun (width, n) ->
      let t = random_trace rng ~width ~n in
      let ru = Range_union.make t in
      let oi = Occ_index.of_trace t in
      check int "length" (Trace.length t) (Occ_index.length oi);
      for lo = 0 to n - 1 do
        for hi = lo to n - 1 do
          let want = Range_union.size ru lo hi in
          let got = Occ_index.size oi lo hi in
          if want <> got then
            Alcotest.failf "width=%d n=%d [%d,%d]: range_union=%d occ=%d"
              width n lo hi want got
        done
      done;
      check bool "queries counted" true
        (Occ_index.queries oi >= n * (n + 1) / 2))
    [ (8, 40); (48, 64); (130, 48); (5, 1) ]

let test_occ_union_matches () =
  let rng = Rng.create 42 in
  let t = random_trace rng ~width:20 ~n:50 in
  let ru = Range_union.make t in
  let oi = Occ_index.of_trace t in
  for lo = 0 to 49 do
    for hi = lo to 49 do
      if not (Bitset.equal (Range_union.union ru lo hi) (Occ_index.union oi lo hi))
      then Alcotest.failf "union mismatch on [%d,%d]" lo hi
    done
  done

let test_occ_bad_range () =
  let t = random_trace (Rng.create 1) ~width:4 ~n:10 in
  let oi = Occ_index.of_trace t in
  List.iter
    (fun (lo, hi) ->
      match Occ_index.size oi lo hi with
      | _ -> Alcotest.failf "range [%d,%d] should raise" lo hi
      | exception Invalid_argument _ -> ())
    [ (-1, 0); (0, 10); (5, 4) ]

let test_segments_roundtrip () =
  let rng = Rng.create 7 in
  List.iter
    (fun (width, n) ->
      let t = random_trace rng ~width ~n in
      let segs = Trace.segments t in
      (* maximality: adjacent segments differ, lengths are positive and
         sum to n *)
      let total = ref 0 in
      Array.iteri
        (fun k (s : Trace.segment) ->
          check bool "positive len" true (s.Trace.len > 0);
          total := !total + s.Trace.len;
          if k > 0 then
            check bool "adjacent segments differ" false
              (Bitset.equal s.Trace.req segs.(k - 1).Trace.req))
        segs;
      check int "lens sum to n" n !total;
      let back = Trace.of_segments (Trace.space t) segs in
      check bool "round-trip" true (traces_equal t back))
    [ (8, 1); (8, 100); (70, 64) ]

let solve_both ts =
  let dense = Interval_cost.of_task_set ~policy:Interval_cost.Dense ts in
  let sparse = Interval_cost.of_task_set ~policy:Interval_cost.Sparse ts in
  (dense, sparse)

(* Dense and sparse are different data structures answering the same
   queries, so every solver must produce bit-identical plans on top of
   either rung. *)
let test_dense_sparse_plans_identical () =
  let rng = Rng.create 13 in
  for round = 0 to 4 do
    let m = 1 + Rng.int rng 3 in
    let tasks =
      Array.init m (fun j ->
          Task_set.task
            ~name:(Printf.sprintf "t%d" j)
            ~v:(Rng.int rng 4)
            (random_trace rng ~width:(4 + Rng.int rng 8) ~n:24))
    in
    let ts = Task_set.make tasks in
    let dense, sparse = solve_both ts in
    (* elementwise first: the oracle cells themselves *)
    for j = 0 to m - 1 do
      for lo = 0 to 23 do
        for hi = lo to 23 do
          if
            dense.Interval_cost.step_cost j lo hi
            <> sparse.Interval_cost.step_cost j lo hi
          then Alcotest.failf "round %d: cell (%d,%d,%d) differs" round j lo hi
        done
      done
    done;
    let dd = Mt_dp.solve dense and ds = Mt_dp.solve sparse in
    check int "mt-dp cost" dd.Mt_dp.cost ds.Mt_dp.cost;
    check bool "mt-dp plan" true (Breakpoints.equal dd.Mt_dp.bp ds.Mt_dp.bp);
    let gd = Mt_greedy.best dense and gs = Mt_greedy.best sparse in
    check int "greedy cost" gd.Mt_greedy.cost gs.Mt_greedy.cost;
    check bool "greedy plan" true
      (Breakpoints.equal gd.Mt_greedy.bp gs.Mt_greedy.bp)
  done

let test_auto_policy_picks_rung () =
  let rng = Rng.create 99 in
  let ts =
    Task_set.make
      [| Task_set.task ~name:"t0" ~v:1 (random_trace rng ~width:8 ~n:40) |]
  in
  let tiny = Interval_cost.of_task_set ~policy:Interval_cost.Auto ~max_bytes:1 ts in
  check Alcotest.string "auto over budget -> sparse" "sparse"
    (Interval_cost.cache_stats tiny).Interval_cost.kind;
  (* the dense rung reports "direct" until [precompute] flattens it *)
  let roomy = Interval_cost.of_task_set ~policy:Interval_cost.Auto ts in
  check Alcotest.string "auto under budget -> dense rung" "direct"
    (Interval_cost.cache_stats roomy).Interval_cost.kind

let test_sparse_cache_stats () =
  let ts = W.Large_gen.task_set ~seed:5 ~steps:2000 ~tasks:2 () in
  let o = Interval_cost.of_task_set ~policy:Interval_cost.Sparse ts in
  let before = Interval_cost.cache_stats o in
  check Alcotest.string "kind" "sparse" before.Interval_cost.kind;
  check int "no queries yet" 0 before.Interval_cost.queries;
  check bool "segments" true (before.Interval_cost.segments > 0);
  check bool "entries" true (before.Interval_cost.cells > 0);
  check bool "bytes" true (before.Interval_cost.bytes_resident > 0);
  ignore (o.Interval_cost.step_cost 0 0 1999);
  ignore (o.Interval_cost.step_cost 1 10 20);
  let after = Interval_cost.cache_stats o in
  check int "queries counted" 2 after.Interval_cost.queries;
  (* precompute must never densify a sparse oracle *)
  let p = Interval_cost.precompute o in
  check Alcotest.string "precompute keeps sparse" "sparse"
    (Interval_cost.cache_stats p).Interval_cost.kind

(* Single-domain memoize accounting: every query is exactly one of
   hit / miss (open-slot fill) / probe_full, and without contention
   there are no slot races, so cells = misses. *)
let test_memoize_counters () =
  let rng = Rng.create 23 in
  let ts =
    Task_set.make
      [| Task_set.task ~name:"t0" ~v:2 (random_trace rng ~width:10 ~n:60) |]
  in
  let base = Interval_cost.of_task_set ~policy:Interval_cost.Sparse ts in
  let memo = Interval_cost.memoize base in
  let total = ref 0 in
  for _ = 1 to 3 do
    for lo = 0 to 59 do
      for hi = lo to 59 do
        ignore (memo.Interval_cost.step_cost 0 lo hi);
        incr total
      done
    done
  done;
  let s = Interval_cost.cache_stats memo in
  check Alcotest.string "kind" "memoize" s.Interval_cost.kind;
  check int "no races single-domain" 0 s.Interval_cost.slot_races;
  check int "cells = misses" s.Interval_cost.misses s.Interval_cost.cells;
  check int "hits + misses + probe_full = queries" !total
    (s.Interval_cost.hits + s.Interval_cost.misses + s.Interval_cost.probe_full);
  check bool "some hits on repeat rounds" true (s.Interval_cost.hits > 0)

let test_large_gen_deterministic () =
  let a = W.Large_gen.trace ~seed:2004 ~steps:3000 () in
  let b = W.Large_gen.trace ~seed:2004 ~steps:3000 () in
  check bool "same seed, same trace" true (traces_equal a b);
  let c = W.Large_gen.trace ~seed:2005 ~steps:3000 () in
  check bool "different seed, different trace" false (traces_equal a c);
  check int "length honoured" 3000 (Trace.length a);
  let nsegs = Array.length (Trace.segments a) in
  check bool "compresses at least 4x" true (nsegs * 4 < 3000);
  (* per-task seeds differ within a set *)
  let ts = W.Large_gen.task_set ~seed:2004 ~steps:500 ~tasks:2 () in
  check bool "tasks differ" false
    (traces_equal (Task_set.get ts 0).Task_set.trace
       (Task_set.get ts 1).Task_set.trace)

let tests =
  [
    Alcotest.test_case "occ_index matches range_union" `Quick
      test_occ_matches_range_union;
    Alcotest.test_case "occ_index union matches" `Quick test_occ_union_matches;
    Alcotest.test_case "occ_index bad range" `Quick test_occ_bad_range;
    Alcotest.test_case "segments round-trip" `Quick test_segments_roundtrip;
    Alcotest.test_case "dense/sparse plans identical" `Quick
      test_dense_sparse_plans_identical;
    Alcotest.test_case "auto policy picks rung" `Quick test_auto_policy_picks_rung;
    Alcotest.test_case "sparse cache stats" `Quick test_sparse_cache_stats;
    Alcotest.test_case "memoize counters" `Quick test_memoize_counters;
    Alcotest.test_case "large_gen deterministic" `Quick
      test_large_gen_deterministic;
  ]
