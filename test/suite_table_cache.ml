(* Flat Bigarray oracle tables and the persistent content-addressed
   table cache: width ladder, overflow checking, elementwise identity
   with the reference in-heap path, memory-budget fallback, on-disk
   round-trips, corruption/staleness recovery, concurrent writers, and
   the cache-served Problem path. *)

open Hr_core
module Bitset = Hr_util.Bitset

let check = Alcotest.check

(* Fresh private cache directory per test, removed eagerly. *)
let dir_counter = ref 0

let with_cache_dir f =
  incr dir_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hr-table-cache-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Fun.protect
    ~finally:(fun () ->
      (match Sys.readdir dir with
      | entries ->
          Array.iter
            (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
            entries
      | exception Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Flat_table. *)

let test_width_ladder () =
  let widths max_value = Flat_table.width_bits (Flat_table.create ~max_value 4) in
  check Alcotest.int "small values take 16 bits" 16 (widths 0xFFFF);
  check Alcotest.int "medium values take 32 bits" 32 (widths 0x10000);
  check Alcotest.int "Int32.max still 32 bits" 32
    (widths (Int32.to_int Int32.max_int));
  check Alcotest.int "huge values take 64 bits" 64
    (widths (Int32.to_int Int32.max_int + 1));
  let t = Flat_table.create ~max_value:9 5 in
  check Alcotest.int "bytes = cells * width/8" 10 (Flat_table.bytes t);
  check Alcotest.int "zero-initialized" 0 (Flat_table.get t 3)

let test_set_get_overflow () =
  let t = Flat_table.create ~max_value:100 8 in
  Flat_table.set t 0 0;
  Flat_table.set t 7 0xFFFF;
  check Alcotest.int "round-trips" 0xFFFF (Flat_table.get t 7);
  let raises f =
    match f () with
    | () -> false
    | exception Flat_table.Overflow _ -> true
  in
  check Alcotest.bool "16-bit writer rejects 0x10000" true (raises (fun () ->
      Flat_table.set t 1 0x10000));
  check Alcotest.bool "writer rejects negatives" true (raises (fun () ->
      Flat_table.set t 1 (-1)));
  let t32 = Flat_table.create ~max_value:0x10000 2 in
  check Alcotest.bool "32-bit writer rejects > Int32.max" true (raises (fun () ->
      Flat_table.set t32 0 (Int32.to_int Int32.max_int + 1)))

let test_dense_matches_reference () =
  (* The Bigarray-backed dense oracle must agree cell-for-cell with the
     reference in-heap computation (the old int-array path): naive
     bitset unions per (j, lo, hi). *)
  let ts = Tutil.sample_task_set () in
  let dense = Interval_cost.precompute (Interval_cost.of_task_set ts) in
  let m = Task_set.num_tasks ts and n = Task_set.steps ts in
  for j = 0 to m - 1 do
    let trace = (Task_set.get ts j).Task_set.trace in
    for lo = 0 to n - 1 do
      for hi = lo to n - 1 do
        let expected = Bitset.cardinal (Trace.range_union trace lo hi) in
        check Alcotest.int
          (Printf.sprintf "cell (%d,%d,%d)" j lo hi)
          expected
          (dense.Interval_cost.step_cost j lo hi)
      done
    done
  done;
  let s = Interval_cost.cache_stats dense in
  check Alcotest.string "dense" "dense" s.Interval_cost.kind;
  check Alcotest.string "built in-process" "built" s.Interval_cost.source;
  check Alcotest.int "16-bit cells suffice" 16 s.Interval_cost.width_bits;
  check Alcotest.int "cells = m*n*n" (m * n * n) s.Interval_cost.cells;
  check Alcotest.int "resident bytes = 2 per cell" (2 * m * n * n)
    s.Interval_cost.bytes_resident

let test_range_union_matches_naive () =
  let inst =
    {
      Tutil.m = 1;
      n = 7;
      widths = [ 5 ];
      vs = [ 2 ];
      reqs = [ [ [ 0 ]; [ 1; 2 ]; []; [ 4 ]; [ 0; 4 ]; [ 3 ]; [ 2 ] ] ];
    }
  in
  let ts = Tutil.task_set_of_instance inst in
  let trace = (Task_set.get ts 0).Task_set.trace in
  let ru = Range_union.make trace in
  for lo = 0 to 6 do
    for hi = lo to 6 do
      check Alcotest.int
        (Printf.sprintf "|U(%d,%d)|" lo hi)
        (Bitset.cardinal (Trace.range_union trace lo hi))
        (Range_union.size ru lo hi)
    done
  done;
  check Alcotest.int "triangular table size" (7 * 8 / 2)
    (Flat_table.length (Range_union.table ru))

let test_max_bytes_fallback () =
  (* Over the byte budget the oracle degrades to the memoizer instead
     of allocating the table; stats report the fallback. *)
  let raw = Interval_cost.of_task_set (Tutil.sample_task_set ()) in
  let memo = Interval_cost.precompute ~max_bytes:8 raw in
  let s = Interval_cost.cache_stats memo in
  check Alcotest.string "fell back to memoize" "memoize" s.Interval_cost.kind;
  check Alcotest.int "boxed entries are word-sized" 64 s.Interval_cost.width_bits;
  ignore (memo.Interval_cost.step_cost 0 0 4);
  let s = Interval_cost.cache_stats memo in
  check Alcotest.bool "memoizer accounts resident bytes" true
    (s.Interval_cost.bytes_resident > 0
    && s.Interval_cost.bytes_peak >= s.Interval_cost.bytes_resident);
  (* And the fallback answers are still the oracle's. *)
  for lo = 0 to 4 do
    for hi = lo to 4 do
      check Alcotest.int
        (Printf.sprintf "memoized (%d,%d)" lo hi)
        (raw.Interval_cost.step_cost 1 lo hi)
        (memo.Interval_cost.step_cost 1 lo hi)
    done
  done

(* ------------------------------------------------------------------ *)
(* Table_cache. *)

let fill t =
  for i = 0 to Flat_table.length t - 1 do
    Flat_table.set t i (i * 3)
  done;
  t

let test_round_trip_widths () =
  with_cache_dir (fun dir ->
      let cache = Table_cache.of_dir dir in
      List.iteri
        (fun k max_value ->
          let key = Printf.sprintf "w%d" k in
          let t = fill (Flat_table.create ~max_value 100) in
          Table_cache.store cache ~key t;
          match Table_cache.load cache ~key ~cells:100 with
          | None -> Alcotest.failf "stored %s does not load" key
          | Some t' ->
              check Alcotest.int
                (key ^ " width preserved")
                (Flat_table.width_bits t) (Flat_table.width_bits t');
              check Alcotest.bool (key ^ " elementwise equal") true
                (Flat_table.equal t t'))
        [ 1000; 100_000; max_int ];
      let s = Table_cache.stats cache in
      check Alcotest.int "3 stores" 3 s.Table_cache.stores;
      check Alcotest.int "3 hits" 3 s.Table_cache.hits;
      check Alcotest.int "no misses" 0 s.Table_cache.misses)

let test_miss_absent_and_wrong_cells () =
  with_cache_dir (fun dir ->
      let cache = Table_cache.of_dir dir in
      check Alcotest.bool "absent key misses" true
        (Table_cache.load cache ~key:"nope" ~cells:10 = None);
      Table_cache.store cache ~key:"t" (fill (Flat_table.create ~max_value:9 10));
      check Alcotest.bool "cell-count mismatch misses" true
        (Table_cache.load cache ~key:"t" ~cells:11 = None);
      check Alcotest.bool "matching load hits" true
        (Table_cache.load cache ~key:"t" ~cells:10 <> None);
      let s = Table_cache.stats cache in
      check Alcotest.int "cell mismatch counts invalid" 1 s.Table_cache.invalid)

let corrupt_byte path pos =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.create 1 in
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1))

let test_corrupt_recovery () =
  with_cache_dir (fun dir ->
      let cache = Table_cache.of_dir dir in
      let t = fill (Flat_table.create ~max_value:9 64) in
      Table_cache.store cache ~key:"c" t;
      (* Flip a payload byte: the digest check must reject the file. *)
      corrupt_byte (Table_cache.file cache ~key:"c") 70;
      check Alcotest.bool "corrupt file misses" true
        (Table_cache.load cache ~key:"c" ~cells:64 = None);
      check Alcotest.int "counted invalid" 1
        (Table_cache.stats cache).Table_cache.invalid;
      (* The caller's protocol: rebuild and overwrite. *)
      Table_cache.store cache ~key:"c" t;
      match Table_cache.load cache ~key:"c" ~cells:64 with
      | None -> Alcotest.fail "rebuilt entry must load"
      | Some t' -> check Alcotest.bool "recovered" true (Flat_table.equal t t'))

let test_truncated_recovery () =
  with_cache_dir (fun dir ->
      let cache = Table_cache.of_dir dir in
      let t = fill (Flat_table.create ~max_value:9 64) in
      Table_cache.store cache ~key:"t" t;
      let path = Table_cache.file cache ~key:"t" in
      Unix.truncate path (64 + 40) (* header + partial payload *);
      check Alcotest.bool "truncated file misses" true
        (Table_cache.load cache ~key:"t" ~cells:64 = None);
      Unix.truncate path 10 (* not even a whole header *);
      check Alcotest.bool "header-less file misses" true
        (Table_cache.load cache ~key:"t" ~cells:64 = None);
      check Alcotest.int "both counted invalid" 2
        (Table_cache.stats cache).Table_cache.invalid)

let test_version_stale () =
  with_cache_dir (fun dir ->
      let cache = Table_cache.of_dir dir in
      let t = fill (Flat_table.create ~max_value:9 16) in
      Table_cache.store cache ~key:"v" t;
      (* A format bump changes the 8-byte magic; simulate an old file by
         rewriting a version digit. *)
      corrupt_byte (Table_cache.file cache ~key:"v") 7;
      check Alcotest.bool "stale-version file misses" true
        (Table_cache.load cache ~key:"v" ~cells:16 = None);
      check Alcotest.int "counted invalid" 1
        (Table_cache.stats cache).Table_cache.invalid)

let test_bad_keys_rejected () =
  with_cache_dir (fun dir ->
      let cache = Table_cache.of_dir dir in
      let rejected key =
        match Table_cache.load cache ~key ~cells:1 with
        | exception Invalid_argument _ -> true
        | _ -> false
      in
      check Alcotest.bool "path traversal rejected" true (rejected "../evil");
      check Alcotest.bool "slash rejected" true (rejected "a/b");
      check Alcotest.bool "leading dot rejected" true (rejected ".hidden");
      check Alcotest.bool "empty rejected" true (rejected "");
      check Alcotest.bool "plain digest accepted" true
        (Table_cache.load cache ~key:(String.make 32 'a') ~cells:1 = None))

let test_concurrent_writers () =
  (* N domains racing to store the same key: temp-file + atomic rename
     means the survivor is one complete file, never an interleaving. *)
  with_cache_dir (fun dir ->
      let cache = Table_cache.of_dir dir in
      let t = fill (Flat_table.create ~max_value:300 4096) in
      let domains =
        Array.init 4 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to 8 do
                  Table_cache.store cache ~key:"race" t
                done))
      in
      Array.iter Domain.join domains;
      check Alcotest.int "all stores completed" 32
        (Table_cache.stats cache).Table_cache.stores;
      check Alcotest.int "no store errors" 0
        (Table_cache.stats cache).Table_cache.errors;
      match Table_cache.load cache ~key:"race" ~cells:4096 with
      | None -> Alcotest.fail "raced entry must be valid"
      | Some t' -> check Alcotest.bool "survivor is complete" true
          (Flat_table.equal t t'))

(* ------------------------------------------------------------------ *)
(* The cached problem path. *)

let test_problem_cache_dir () =
  with_cache_dir (fun dir ->
      let ts = Tutil.sample_task_set () in
      let cold = Problem.of_task_set ~cache_dir:dir ts in
      let cold_stats = Interval_cost.cache_stats cold.Problem.oracle in
      check Alcotest.string "cold build computes" "built"
        cold_stats.Interval_cost.source;
      let warm = Problem.of_task_set ~cache_dir:dir ts in
      let warm_stats = Interval_cost.cache_stats warm.Problem.oracle in
      check Alcotest.string "warm build maps the file" "mmap"
        warm_stats.Interval_cost.source;
      check Alcotest.int "same cells" cold_stats.Interval_cost.cells
        warm_stats.Interval_cost.cells;
      check Alcotest.int "same width" cold_stats.Interval_cost.width_bits
        warm_stats.Interval_cost.width_bits;
      (* Identical solves, cold vs warm. *)
      let solver = Solver_registry.find_exn "mt-dp" in
      let a = Solver.solve ~seed:7 solver cold in
      let b = Solver.solve ~seed:7 solver warm in
      check Alcotest.int "same cost" a.Solution.cost b.Solution.cost;
      check Alcotest.bool "same plan" true
        (Breakpoints.equal a.Solution.bp b.Solution.bp))

let test_case_warm_path () =
  (* Case.problem's warm path skips even the oracle construction; the
     solve must still be identical to the fresh one, for every model. *)
  with_cache_dir (fun dir ->
      List.iter
        (fun (name, r) ->
          let case =
            match r with
            | Ok c -> c
            | Error e -> Alcotest.failf "corpus %s: %s" name e
          in
          let fresh = Hr_check.Case.problem case in
          ignore (Hr_check.Case.problem ~cache_dir:dir case);
          let warm = Hr_check.Case.problem ~cache_dir:dir case in
          let ws = Interval_cost.cache_stats warm.Problem.oracle in
          if ws.Interval_cost.cells > 0 then
            check Alcotest.string (name ^ " warm source") "mmap"
              ws.Interval_cost.source;
          let solver = List.hd (Solver_registry.applicable fresh) in
          let a = Solver.solve ~seed:5 solver fresh in
          let b = Solver.solve ~seed:5 solver warm in
          check Alcotest.int (name ^ " cost") a.Solution.cost b.Solution.cost;
          check Alcotest.bool (name ^ " plan") true
            (Breakpoints.equal a.Solution.bp b.Solution.bp))
        (Hr_check.Corpus.load_dir "corpus"))

let test_of_cache_miss () =
  with_cache_dir (fun dir ->
      let cache = Table_cache.of_dir dir in
      check Alcotest.bool "of_cache misses on an empty dir" true
        (Interval_cost.of_cache cache ~key:(String.make 32 'b') ~m:2 ~n:5
           ~v:[| 1; 2 |]
        = None))

(* ------------------------------------------------------------------ *)
(* Cli.positive. *)

let test_cli_positive () =
  check Alcotest.(result int string) "parses" (Ok 64)
    (Hr_util.Cli.positive ~what:"--max-table-mb" "64");
  check Alcotest.bool "rejects zero" true
    (Result.is_error (Hr_util.Cli.positive ~what:"x" "0"));
  check Alcotest.bool "rejects negatives" true
    (Result.is_error (Hr_util.Cli.positive ~what:"x" "-3"));
  check Alcotest.bool "rejects junk" true
    (Result.is_error (Hr_util.Cli.positive ~what:"x" "64MB"));
  match Hr_util.Cli.positive_exn ~what:"--max-table-mb" "abc" with
  | exception Failure msg ->
      check Alcotest.bool "message names the option" true
        (Astring.String.is_infix ~affix:"--max-table-mb" msg)
  | v -> Alcotest.failf "junk parsed as %d" v

let tests =
  [
    Alcotest.test_case "flat table width ladder" `Quick test_width_ladder;
    Alcotest.test_case "flat table set/get + overflow" `Quick test_set_get_overflow;
    Alcotest.test_case "dense table = reference unions" `Quick
      test_dense_matches_reference;
    Alcotest.test_case "range union = naive unions" `Quick
      test_range_union_matches_naive;
    Alcotest.test_case "max_bytes falls back to memoize" `Quick
      test_max_bytes_fallback;
    Alcotest.test_case "round trip per width" `Quick test_round_trip_widths;
    Alcotest.test_case "absent / wrong-cells misses" `Quick
      test_miss_absent_and_wrong_cells;
    Alcotest.test_case "corrupt file recovery" `Quick test_corrupt_recovery;
    Alcotest.test_case "truncated file recovery" `Quick test_truncated_recovery;
    Alcotest.test_case "stale version misses" `Quick test_version_stale;
    Alcotest.test_case "invalid keys rejected" `Quick test_bad_keys_rejected;
    Alcotest.test_case "concurrent writers race safely" `Quick
      test_concurrent_writers;
    Alcotest.test_case "Problem.make cache_dir warm = mmap" `Quick
      test_problem_cache_dir;
    Alcotest.test_case "Case.problem warm path, whole corpus" `Quick
      test_case_warm_path;
    Alcotest.test_case "of_cache misses cleanly" `Quick test_of_cache_miss;
    Alcotest.test_case "Cli.positive strictness" `Quick test_cli_positive;
  ]
