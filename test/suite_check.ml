(* The conformance harness itself: generator validity and determinism,
   case JSON round-trips, the shrinker, corpus IO, and the
   end-to-end demonstration that a deliberately buggy solver is caught,
   shrunk and reported with its seed. *)

open Hr_core
module Case = Hr_check.Case
module Gen = Hr_check.Gen
module Invariant = Hr_check.Invariant
module Shrink = Hr_check.Shrink
module Corpus = Hr_check.Corpus
module Runner = Hr_check.Runner
module Rng = Hr_util.Rng

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Generator.                                                          *)

let test_generator_builds_valid_cases () =
  for seed = 0 to 99 do
    let case = Gen.case (Rng.create seed) in
    let problem =
      try Case.problem case
      with e ->
        Alcotest.failf "seed %d: %s does not build: %s" seed (Case.summary case)
          (Printexc.to_string e)
    in
    check int
      (Printf.sprintf "seed %d: m agrees" seed)
      (Case.m case) (Problem.m problem);
    check int
      (Printf.sprintf "seed %d: n agrees" seed)
      (Case.n case) (Problem.n problem)
  done

let test_generator_deterministic () =
  for seed = 0 to 19 do
    let a = Gen.case (Rng.create seed) and b = Gen.case (Rng.create seed) in
    check bool (Printf.sprintf "seed %d reproduces" seed) true (a = b)
  done

let test_generator_covers_the_product_space () =
  (* 400 draws must visit every oracle model, every machine class and
     every synchronization mode — the matrix the harness exists to
     sweep. *)
  let models = Hashtbl.create 8
  and classes = Hashtbl.create 8
  and modes = Hashtbl.create 8 in
  let rng = Rng.create 7 in
  for _ = 1 to 400 do
    let case = Gen.case (Rng.split rng) in
    let model =
      match case.Case.spec with
      | Case.Switch _ -> "switch"
      | Case.Weighted _ -> "weighted"
      | Case.Dag _ -> "dag"
    in
    Hashtbl.replace models model ();
    Hashtbl.replace classes case.Case.machine_class ();
    Hashtbl.replace modes case.Case.mode ()
  done;
  check int "all three oracle models drawn" 3 (Hashtbl.length models);
  check int "all three machine classes drawn" 3 (Hashtbl.length classes);
  check int "all four sync modes drawn" 4 (Hashtbl.length modes)

let qcheck_case_json_roundtrip =
  Tutil.prop "Case JSON round-trips"
    QCheck2.Gen.(int_bound 100_000)
    string_of_int
    (fun seed ->
      let case = Gen.case (Rng.create seed) in
      match Case.of_string (Case.to_string case) with
      | Ok reloaded -> reloaded = case
      | Error _ -> false)

let test_case_schema_tag () =
  (* Regression: an [open Telemetry] once shadowed the case schema
     constant, silently tagging corpus files as telemetry documents. *)
  let s = Case.to_string (Gen.case (Rng.create 1)) in
  check bool "tagged with the case schema" true (contains s Case.schema_version);
  check bool "case schema is its own" false
    (contains s Telemetry.schema_version)

let test_case_of_string_errors () =
  List.iter
    (fun (label, s) ->
      match Case.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s must be rejected" label)
    [
      ("garbage", "not json");
      ("wrong schema", {|{"schema":"nope/9"}|});
      ("missing oracle", Printf.sprintf {|{"schema":%S}|} Case.schema_version);
      ( "w under non-sync",
        {|{"schema":"hyperreconf.case/1","oracle":{"model":"switch","widths":[2],"vs":[0],"reqs":[[[0]]]},"params":{"w":3,"pub":0,"hyper":"parallel","reconf":"parallel"},"mode":"non-synchronized","machine_class":"partial"}|}
      );
    ]

(* ------------------------------------------------------------------ *)
(* Shrinker.                                                           *)

let three_task_case () =
  {
    Case.spec =
      Case.Switch
        {
          widths = [| 3; 3; 2 |];
          vs = [| 2; 1; 0 |];
          reqs =
            [|
              [ [ 0 ]; [ 1; 2 ]; [ 0 ]; [ 2 ] ];
              [ [ 1 ]; [ 0 ]; [ 2 ]; [ 1 ] ];
              [ [ 0 ]; [ 1 ]; [ 0 ]; [ 1 ] ];
            |];
        };
    params = Sync_cost.default_params;
    mode = Mixed_sync.Fully_synchronized;
    machine_class = Problem.Partial;
    place = None;
  }

let test_candidates_are_valid () =
  List.iter
    (fun c ->
      match Case.problem c with
      | _ -> ()
      | exception e ->
          Alcotest.failf "candidate %s invalid: %s" (Case.summary c)
            (Printexc.to_string e))
    (Shrink.candidates (three_task_case ()))

let test_shrink_reduces_planted_failure () =
  (* A "failure" that holds whenever at least two tasks and two steps
     survive: the shrinker must walk it down to exactly that floor. *)
  let still_fails c = Case.m c >= 2 && Case.n c >= 2 in
  let shrunk = Shrink.shrink ~still_fails (three_task_case ()) in
  check int "tasks at the floor" 2 (Case.m shrunk);
  check int "steps at the floor" 2 (Case.n shrunk);
  check bool "still failing" true (still_fails shrunk)

let test_shrink_respects_fuel () =
  (* An always-failing predicate terminates on candidate exhaustion;
     with zero fuel nothing is attempted at all. *)
  let case = three_task_case () in
  let calls = ref 0 in
  let always c =
    incr calls;
    ignore c;
    true
  in
  let shrunk = Shrink.shrink ~fuel:0 ~still_fails:always case in
  check int "zero fuel leaves the case alone" 0 !calls;
  check bool "unchanged" true (shrunk = case);
  let shrunk = Shrink.shrink ~still_fails:always case in
  check bool "always-failing shrink terminates at a minimal case" true
    (Case.m shrunk = 1 && Case.n shrunk = 1)

(* ------------------------------------------------------------------ *)
(* Corpus.                                                             *)

let with_temp_dir f =
  let dir = Filename.temp_file "hr_corpus" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_corpus_roundtrip () =
  with_temp_dir (fun dir ->
      let a = Gen.case (Rng.create 3) and b = Gen.case (Rng.create 4) in
      let _ = Corpus.save ~dir ~name:"b-second" b in
      let path = Corpus.save ~dir ~name:"a-first" a in
      check bool "save returns the path" true (Sys.file_exists path);
      match Corpus.load_dir dir with
      | [ ("a-first.json", Ok la); ("b-second.json", Ok lb) ] ->
          check bool "first case round-trips" true (la = a);
          check bool "second case round-trips" true (lb = b)
      | entries ->
          Alcotest.failf "unexpected corpus listing (%d entries, sorted?)"
            (List.length entries))

let test_corpus_missing_and_malformed () =
  check int "missing dir is empty" 0
    (List.length (Corpus.load_dir "/no/such/dir"));
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "bad.json" in
      Sys.mkdir dir 0o755;
      let oc = open_out path in
      output_string oc "{broken";
      close_out oc;
      match Corpus.load_dir dir with
      | [ ("bad.json", Error msg) ] ->
          check bool "error names the file" true (contains msg "bad.json")
      | _ -> Alcotest.fail "malformed file must load as Error")

(* ------------------------------------------------------------------ *)
(* Runner: clean registry, and the buggy-solver demonstration.         *)

let test_runner_clean_on_small_sweep () =
  let summary, failures = Runner.run ~cases:25 ~seed:9 () in
  check int "all cases ran" 25 (Runner.cases_run summary);
  check bool "registry upholds every invariant" true (failures = []);
  check bool "summary agrees" false (Runner.failed summary);
  let table = Runner.table summary in
  List.iter
    (fun col -> check bool (col ^ " column present") true (contains table col))
    ("solver" :: "solve"
    :: List.map (fun (i : Invariant.t) -> i.Invariant.name) Invariant.all)

let test_check_case_on_good_case () =
  check bool "a valid case has no violations" true
    (Runner.check_case ~seed:5 (Gen.case (Rng.create 11)) = [])

(* A from-scratch exhaustive solver with a classic off-by-one: the
   enumeration stops one mask short, so the all-breakpoints matrix is
   never considered — yet it still claims exactness.  The harness must
   catch it, shrink the witness, and report the seed. *)
let off_by_one_solver =
  Solver.make ~name:"scratch-brute" ~kind:Solver.Exact
    ~doc:"deliberately skips the last enumeration mask (test fixture)"
    ~handles:(fun p ->
      let b = Brute.bits p in
      b >= 1 && b <= 10)
    (fun ~budget:_ ~rng:_ p ->
      let m = Problem.m p and n = Problem.n p in
      let free = Brute.bits p in
      let all_task = p.Problem.machine_class = Problem.All_task in
      let best_cost = ref max_int in
      let best = ref (Breakpoints.create ~m ~n) in
      for mask = 0 to (1 lsl free) - 2 (* off by one *) do
        let raw =
          if all_task then
            let row =
              Array.init n (fun i -> i = 0 || mask land (1 lsl (i - 1)) <> 0)
            in
            Array.init m (fun _ -> Array.copy row)
          else
            Array.init m (fun j ->
                Array.init n (fun i ->
                    i = 0 || mask land (1 lsl ((j * (n - 1)) + i - 1)) <> 0))
        in
        let bp = Breakpoints.of_matrix raw in
        let cost = Problem.eval p bp in
        if cost < !best_cost then begin
          best_cost := cost;
          best := bp
        end
      done;
      Solution.make ~solver:"scratch-brute" ~exact:true ~cost:!best_cost !best)

(* An instance whose unique optimum is the skipped all-breaks matrix:
   v = 0 and alternating requirements make every merge strictly
   worse (the merged block pays its union width at every step). *)
let planted_case =
  {
    Case.spec = Case.Switch { widths = [| 2 |]; vs = [| 0 |]; reqs = [| [ [ 0 ]; [ 1 ] ] |] };
    params = Sync_cost.default_params;
    mode = Mixed_sync.Fully_synchronized;
    machine_class = Problem.Partial;
    place = None;
  }

let test_planted_case_optimum_is_last_mask () =
  (* Sanity for the fixture itself: brute's optimum is strictly below
     anything the truncated enumeration can reach. *)
  let problem = Case.problem planted_case in
  let optimum, bp = Brute.solve problem in
  check int "optimum reconfigures every step" 2 optimum;
  check bool "via the all-breaks matrix" true (Breakpoints.is_break bp 0 1)

let test_off_by_one_solver_is_caught_shrunk_and_seeded () =
  let seed = 42 in
  let summary, failures =
    Runner.run
      ~solvers:[ off_by_one_solver ]
      ~corpus:[ ("planted", planted_case) ]
      ~cases:150 ~seed ()
  in
  check bool "the harness flags the bug" true (Runner.failed summary);
  check bool "at least one failure reported" true (failures <> []);
  let exactness_failures =
    List.filter (fun f -> f.Runner.invariant = "exact-brute") failures
  in
  check bool "the false exactness claim is the finding" true
    (exactness_failures <> []);
  List.iter
    (fun f ->
      check bool "failure names the buggy solver" true
        (f.Runner.solver = "scratch-brute");
      check bool "replay seed is reported" true (f.Runner.seed >= seed);
      check bool "shrunk to <= 3 tasks" true (Case.m f.Runner.shrunk <= 3);
      check bool "shrunk case still fails" true
        (List.exists
           (fun (s, inv, _) -> s = "scratch-brute" && inv = f.Runner.invariant)
           (Runner.check_case ~solvers:[ off_by_one_solver ] ~seed:f.Runner.seed
              f.Runner.shrunk));
      (* The report round-trips through the corpus format, so the
         counterexample replays in a later session. *)
      match Case.of_string (Case.to_string f.Runner.shrunk) with
      | Ok c -> check bool "shrunk case serializes" true (c = f.Runner.shrunk)
      | Error e -> Alcotest.failf "shrunk case does not serialize: %s" e)
    exactness_failures

let test_runner_deadline_keeps_invariants () =
  (* The smoke configuration: a deadline on every solve must not break
     any invariant (cut-off solutions are admissible best-so-far). *)
  let _, failures = Runner.run ~deadline_ms:5 ~cases:15 ~seed:13 () in
  check bool "deadline-bounded sweep is clean" true (failures = [])

let tests =
  [
    Alcotest.test_case "generator builds valid cases" `Quick
      test_generator_builds_valid_cases;
    Alcotest.test_case "generator is deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "generator covers the product space" `Quick
      test_generator_covers_the_product_space;
    qcheck_case_json_roundtrip;
    Alcotest.test_case "case schema tag" `Quick test_case_schema_tag;
    Alcotest.test_case "case parse errors" `Quick test_case_of_string_errors;
    Alcotest.test_case "shrink candidates stay valid" `Quick
      test_candidates_are_valid;
    Alcotest.test_case "shrink reduces a planted failure" `Quick
      test_shrink_reduces_planted_failure;
    Alcotest.test_case "shrink respects fuel" `Quick test_shrink_respects_fuel;
    Alcotest.test_case "corpus round-trip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus missing and malformed" `Quick
      test_corpus_missing_and_malformed;
    Alcotest.test_case "runner clean on the registry" `Quick
      test_runner_clean_on_small_sweep;
    Alcotest.test_case "check_case on a good case" `Quick
      test_check_case_on_good_case;
    Alcotest.test_case "planted fixture sanity" `Quick
      test_planted_case_optimum_is_last_mask;
    Alcotest.test_case "off-by-one solver caught, shrunk, seeded" `Quick
      test_off_by_one_solver_is_caught_shrunk_and_seeded;
    Alcotest.test_case "deadline-bounded sweep stays clean" `Quick
      test_runner_deadline_keeps_invariants;
  ]
