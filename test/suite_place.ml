(* The placement-aware family (lib/place): hand-traced evaluator pins,
   schedule-validity properties, the place-dp vs Place_brute
   differential with greedy shrinking, never-below-brute and budget
   cut-off safety for the heuristics, and byte-pinned golden plans. *)

open Hr_core
module Fabric = Hr_place.Fabric
module Placement = Hr_place.Placement
module Strip_dp = Hr_place.Strip_dp
module Joint = Hr_place.Joint
module Place_brute = Hr_place.Place_brute
module Psolvers = Hr_place.Solvers
module Case = Hr_check.Case
module Gen = Hr_check.Gen
module Shrink = Hr_check.Shrink
module Rng = Hr_util.Rng
module Budget = Hr_util.Budget

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Deterministic instances.                                            *)

(* A tiny m-task oracle over 2-switch traces with chosen v_j; the base
   cost model is irrelevant to the placement pins, only the v vector
   and the dimensions matter. *)
let tiny_problem ?machine_class ~vs ~n () =
  let s = Switch_space.make 2 in
  let task j v =
    Task_set.task
      ~name:(Printf.sprintf "T%d" j)
      ~v
      (Trace.of_lists s (List.init n (fun i -> [ (i + j) mod 2 ])))
  in
  Problem.of_task_set ?machine_class
    (Task_set.make (Array.of_list (List.mapi task vs)))

(* Two full-window tasks filling a width-3 strip: sizes 1+2 = 3, so a
   step has exactly two offset vectors and every hand computation below
   is checkable on paper. *)
let duo_fabric =
  {
    Fabric.width = 3;
    sizes = [| 1; 2 |];
    windows = [| (0, 2); (0, 2) |];
    reloc = [| 4; 5 |];
  }

let duo_problem ?machine_class () =
  Joint.attach (tiny_problem ?machine_class ~vs:[ 2; 3 ] ~n:3 ()) duo_fabric

(* Region reuse: two size-2 tasks on a width-2 strip with disjoint
   residency windows — both must occupy the whole strip, legally,
   because the windows never overlap. *)
let reuse_fabric =
  {
    Fabric.width = 2;
    sizes = [| 2; 2 |];
    windows = [| (0, 1); (2, 3) |];
    reloc = [| 1; 1 |];
  }

let reuse_problem () =
  Joint.attach (tiny_problem ~vs:[ 1; 2 ] ~n:4 ()) reuse_fabric

(* Three tasks with staggered windows on a width-4 strip. *)
let trio_fabric =
  {
    Fabric.width = 4;
    sizes = [| 1; 2; 1 |];
    windows = [| (0, 3); (0, 2); (1, 3) |];
    reloc = [| 2; 1; 3 |];
  }

let trio_problem ?machine_class () =
  Joint.attach (tiny_problem ?machine_class ~vs:[ 2; 1; 3 ] ~n:4 ()) trio_fabric

(* ------------------------------------------------------------------ *)
(* Fabric model.                                                       *)

let test_fabric_check () =
  check bool "duo fabric valid" true (Result.is_ok (Fabric.check ~n:3 duo_fabric));
  check bool "trio fabric valid" true (Result.is_ok (Fabric.check ~n:4 trio_fabric));
  (* Step overload: 2 + 2 > 3 on an overlapping step. *)
  let overloaded = { duo_fabric with Fabric.sizes = [| 2; 2 |] } in
  check bool "overloaded step rejected" true
    (Result.is_error (Fabric.check ~n:3 overloaded));
  (* Window beyond the horizon. *)
  check bool "window past horizon rejected" true
    (Result.is_error (Fabric.check ~n:2 duo_fabric));
  (* Oversized task. *)
  let wide = { duo_fabric with Fabric.sizes = [| 4; 2 |] } in
  check bool "task wider than strip rejected" true
    (Result.is_error (Fabric.check ~n:3 wide))

let test_fabric_vectors_lex () =
  (* Width 3, sizes 1 and 2: the only packings are task 0 at 0 with
     task 1 at 1, or task 1 at 0 with task 0 at 2 — in that
     lexicographic order. *)
  let vs = Fabric.vectors duo_fabric 0 in
  check int "two vectors" 2 (Array.length vs);
  check bool "lex first is [0;1]" true (vs.(0) = [| 0; 1 |]);
  check bool "lex second is [2;0]" true (vs.(1) = [| 2; 0 |]);
  (* A step with no resident tasks has exactly the empty vector. *)
  let late = { duo_fabric with Fabric.windows = [| (0, 0); (0, 0) |] } in
  let empty = Fabric.vectors late 2 in
  check int "vacant step has one vector" 1 (Array.length empty);
  check int "and it is empty" 0 (Array.length empty.(0))

let test_fabric_residency () =
  check bool "task 2 absent at step 0" true (not (Fabric.active trio_fabric 2 0));
  check bool "task 1 present at step 2" true (Fabric.active trio_fabric 1 2);
  check bool "step 0 residents" true (Fabric.tasks_at trio_fabric 0 = [| 0; 1 |]);
  check int "step 1 load" 4 (Fabric.load trio_fabric 1);
  check int "step 3 load" 2 (Fabric.load trio_fabric 3)

let test_static_first_fit () =
  (match Fabric.static_first_fit duo_fabric with
  | None -> Alcotest.fail "duo fabric has an obvious static fit"
  | Some offs -> check bool "lowest offsets first" true (offs = [| 0; 1 |]));
  (* Disjoint windows may share slots: both reuse tasks sit at 0. *)
  match Fabric.static_first_fit reuse_fabric with
  | None -> Alcotest.fail "reuse fabric has a static fit"
  | Some offs -> check bool "windows share the strip" true (offs = [| 0; 0 |])

(* ------------------------------------------------------------------ *)
(* The placement evaluator, by hand.                                   *)

(* Schedule that voluntarily swaps the two duo tasks at step 1:
   task 0 goes 0 -> 2, task 1 goes 1 -> 0.  Under a matrix with no
   break at step 1 each mover pays reloc_j + v_j; a planned
   hyperreconfiguration at the move step absorbs the surcharge. *)
let duo_swap () = [| [| 0; 2; 2 |]; [| 1; 0; 0 |] |]

let test_cost_hand_trace () =
  let v = [| 2; 3 |] in
  let p = duo_swap () in
  check bool "swap schedule is valid" true
    (Result.is_ok (Placement.check duo_fabric ~n:3 p));
  check bool "moves are (task, step) pairs at step 1" true
    (Placement.moves duo_fabric p = [ (0, 1); (1, 1) ]);
  check int "two relocations" 2 (Placement.relocations duo_fabric p);
  let bp0 = Breakpoints.create ~m:2 ~n:3 in
  (* No breaks at step 1: (4 + 2) + (5 + 3). *)
  check int "surcharge paid by both movers" 14 (Placement.cost duo_fabric ~v bp0 p);
  (* A full break column at step 1 absorbs both surcharges: 4 + 5. *)
  let bp_col =
    Breakpoints.set (Breakpoints.set bp0 0 1 true) 1 1 true
  in
  check int "break column absorbs surcharges" 9
    (Placement.cost duo_fabric ~v bp_col p);
  (* Breaking only task 0 absorbs only its surcharge: 4 + (5 + 3). *)
  let bp_t0 = Breakpoints.set bp0 0 1 true in
  check int "per-task absorption" 12 (Placement.cost duo_fabric ~v bp_t0 p);
  (* The static schedule has no moves, hence no cost, under any bp. *)
  let static = Placement.of_static duo_fabric ~n:3 [| 0; 1 |] in
  check int "static schedule costs nothing" 0
    (Placement.cost duo_fabric ~v bp_col static)

let test_strip_dp_hand_trace () =
  let dp = Strip_dp.build duo_fabric ~v:[| 2; 3 |] ~n:3 in
  let bp0 = Breakpoints.create ~m:2 ~n:3 in
  (* A static fit exists, so the optimum never moves. *)
  check int "min cost is zero" 0 (Strip_dp.min_cost dp bp0);
  let plan = Strip_dp.plan dp bp0 in
  check string "canonical plan is the lex-smallest static one"
    "0:0@0-2;1:1@0-2" (Placement.to_string plan);
  check int "plan prices to min_cost" 0
    (Placement.cost duo_fabric ~v:[| 2; 3 |] bp0 plan);
  (* Region reuse: disjoint windows, arrival placement free. *)
  let dp2 = Strip_dp.build reuse_fabric ~v:[| 1; 2 |] ~n:4 in
  let bp0' = Breakpoints.create ~m:2 ~n:4 in
  check int "reuse fabric relocates nothing" 0 (Strip_dp.min_cost dp2 bp0');
  check string "both tasks occupy the freed strip" "0:0@0-1;1:0@2-3"
    (Placement.to_string (Strip_dp.plan dp2 bp0'))

let test_joint_objective () =
  let p = duo_problem () in
  let bp0 = Breakpoints.create ~m:2 ~n:3 in
  check int "eval = eval_base + min_reloc"
    (Problem.eval_base p bp0 + Joint.min_reloc p bp0)
    (Problem.eval p bp0);
  check int "min_reloc is zero on a statically placeable fabric" 0
    (Joint.min_reloc p bp0);
  (match Joint.plan p bp0 with
  | None -> Alcotest.fail "extended problem must produce a plan"
  | Some plan ->
      check string "joint plan is the canonical schedule" "0:0@0-2;1:1@0-2"
        (Placement.to_string plan));
  (* The plain projection drops the extension entirely. *)
  let plain = Problem.without_ext p in
  check bool "without_ext is plain" true (Problem.plain plain);
  check int "plain eval is the base objective" (Problem.eval_base p bp0)
    (Problem.eval plain bp0);
  check bool "attach refuses an invalid fabric" true
    (match
       Joint.attach
         (tiny_problem ~vs:[ 2; 3 ] ~n:3 ())
         { duo_fabric with Fabric.sizes = [| 2; 2 |] }
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_placement_round_trip () =
  List.iter
    (fun (fabric, n, p) ->
      let s = Placement.to_string p in
      match Placement.of_string ~m:(Fabric.m fabric) ~n s with
      | Error e -> Alcotest.failf "round trip failed on %s: %s" s e
      | Ok q -> check string "placement string round-trips" s (Placement.to_string q))
    [
      (duo_fabric, 3, duo_swap ());
      (duo_fabric, 3, Placement.of_static duo_fabric ~n:3 [| 0; 1 |]);
      (reuse_fabric, 4, Placement.of_static reuse_fabric ~n:4 [| 0; 0 |]);
      (trio_fabric, 4, Psolvers.shelf_schedule trio_fabric ~n:4);
    ]

(* ------------------------------------------------------------------ *)
(* Schedule validity properties on random fabrics.                     *)

let placement_profile =
  { Gen.default_profile with Gen.place_fraction = 1.; Gen.large_fraction = 0. }

(* Draw placement cases until [want] survive the filter. *)
let placement_cases ?(filter = fun _ _ -> true) ~seed want =
  let rng = Rng.create seed in
  let rec go acc found attempts =
    if found = want then List.rev acc
    else if attempts > 500 then
      Alcotest.failf "only %d/%d placement cases after %d draws" found want
        attempts
    else
      let case = Gen.case ~profile:placement_profile rng in
      match case.Case.place with
      | None -> go acc found (attempts + 1)
      | Some _ ->
          let problem = Case.problem case in
          if filter case problem then
            go ((case, problem) :: acc) (found + 1) (attempts + 1)
          else go acc found (attempts + 1)
  in
  go [] 0 0

let test_schedules_stay_on_fabric () =
  List.iter
    (fun ((case : Case.t), problem) ->
      let fabric = Option.get case.Case.place in
      let n = Case.n case in
      (* The shelf schedule is always valid. *)
      (match Placement.check fabric ~n (Psolvers.shelf_schedule fabric ~n) with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "shelf schedule invalid on %s: %s" (Case.summary case) e);
      (* So is the canonical DP plan, for matrices of varied shape. *)
      let bps =
        [
          Breakpoints.create ~m:(Case.m case) ~n;
          Breakpoints.all ~m:(Case.m case) ~n;
          Breakpoints.periodic ~m:(Case.m case) ~n 2;
        ]
      in
      List.iter
        (fun bp ->
          if Problem.admissible problem bp then
            match Joint.plan problem bp with
            | None -> Alcotest.fail "placement case lost its extension"
            | Some plan -> (
                match Placement.check fabric ~n plan with
                | Ok () -> ()
                | Error e ->
                    Alcotest.failf "DP plan invalid on %s: %s"
                      (Case.summary case) e))
        bps)
    (placement_cases ~seed:1137 20)

let test_plan_prices_to_min_reloc () =
  List.iter
    (fun ((case : Case.t), problem) ->
      let fabric = Option.get case.Case.place in
      let n = Case.n case in
      let bp = Breakpoints.create ~m:(Case.m case) ~n in
      (* The extension term the solvers see is exactly the DP minimum,
         and the canonical plan is a valid witness of it. *)
      check int
        (Printf.sprintf "eval - eval_base = min_reloc on %s" (Case.summary case))
        (Joint.min_reloc problem bp)
        (Problem.eval problem bp - Problem.eval_base problem bp);
      match Joint.plan problem bp with
      | None -> Alcotest.fail "placement case lost its extension"
      | Some plan ->
          check bool "canonical plan valid" true
            (Result.is_ok (Placement.check fabric ~n plan)))
    (placement_cases ~seed:2291 20)

(* ------------------------------------------------------------------ *)
(* place-dp vs Place_brute: bit-identical on a tiny-fabric corpus.     *)

let dp_matches_brute problem =
  let opt, obp, osched = Place_brute.solve problem in
  let sol = Solver.solve Psolvers.place_dp problem in
  sol.Solution.cost = opt
  && Breakpoints.equal sol.Solution.bp obp
  && List.assoc_opt "placement" sol.Solution.stats
     = Some (Placement.to_string osched)
  && sol.Solution.exact

let test_place_dp_differential () =
  let feasible _case problem =
    Psolvers.place_dp.Solver.handles problem && Place_brute.feasible problem
  in
  let cases = placement_cases ~filter:feasible ~seed:90210 30 in
  List.iter
    (fun ((case : Case.t), problem) ->
      if not (dp_matches_brute problem) then begin
        (* Shrink before reporting, exactly like the harness would. *)
        let still_fails c =
          match c.Case.place with
          | None -> false
          | Some _ -> (
              match Case.problem c with
              | exception _ -> false
              | p ->
                  Psolvers.place_dp.Solver.handles p
                  && Place_brute.feasible p
                  && not (dp_matches_brute p))
        in
        let shrunk = Shrink.shrink ~still_fails case in
        Alcotest.failf "place-dp deviates from Place_brute on %s\nshrunk: %s"
          (Case.summary case) (Case.to_string shrunk)
      end)
    cases;
  check int "differential corpus size" 30 (List.length cases)

(* ------------------------------------------------------------------ *)
(* Heuristics: never below brute, and safe under a dead budget.        *)

let solution_placement (case : Case.t) (sol : Solution.t) =
  match List.assoc_opt "placement" sol.Solution.stats with
  | None -> Alcotest.failf "%s reported no placement" sol.Solution.solver
  | Some s -> (
      match Placement.of_string ~m:(Case.m case) ~n:(Case.n case) s with
      | Error e -> Alcotest.failf "unparseable placement from %s: %s" sol.Solution.solver e
      | Ok p -> p)

let test_heuristics_never_below_brute () =
  let feasible _case problem = Place_brute.feasible problem in
  List.iter
    (fun ((case : Case.t), problem) ->
      let opt, _, _ = Place_brute.solve problem in
      List.iter
        (fun solver ->
          if solver.Solver.handles problem then begin
            let sol = Solver.solve solver problem in
            if sol.Solution.cost < opt then
              Alcotest.failf "%s undercut the exhaustive optimum on %s (%d < %d)"
                solver.Solver.name (Case.summary case) sol.Solution.cost opt;
            if sol.Solution.exact && sol.Solution.cost <> opt then
              Alcotest.failf "%s claims exactness at %d (optimum %d) on %s"
                solver.Solver.name sol.Solution.cost opt (Case.summary case);
            let fabric = Option.get case.Case.place in
            let placement = solution_placement case sol in
            (match Placement.check fabric ~n:(Case.n case) placement with
            | Ok () -> ()
            | Error e ->
                Alcotest.failf "%s reported an invalid placement on %s: %s"
                  solver.Solver.name (Case.summary case) e);
            check bool
              (Printf.sprintf "%s matrix admissible" solver.Solver.name)
              true
              (Problem.admissible problem sol.Solution.bp)
          end)
        [ Psolvers.place_shelf; Psolvers.place_dp; Psolvers.place_local ])
    (placement_cases ~filter:feasible ~seed:4242 10)

let test_budget_cut_off_safety () =
  let dead = Budget.of_deadline_ms 0 in
  let problem = trio_problem () in
  let opt, _, _ = Place_brute.solve problem in
  List.iter
    (fun solver ->
      let sol = Solver.solve ~budget:dead solver problem in
      check bool
        (Printf.sprintf "%s cut-off plan admissible" solver.Solver.name)
        true
        (Problem.admissible problem sol.Solution.bp);
      check int
        (Printf.sprintf "%s cut-off cost restamped by eval" solver.Solver.name)
        (Problem.eval problem sol.Solution.bp)
        sol.Solution.cost;
      if sol.Solution.cost < opt then
        Alcotest.failf "%s undercut the optimum under a dead budget"
          solver.Solver.name;
      if sol.Solution.cut_off && sol.Solution.exact then
        Alcotest.failf "%s claims exactness despite a cut-off" solver.Solver.name)
    [ Psolvers.place_shelf; Psolvers.place_dp; Psolvers.place_local ]

let test_local_warm_start () =
  let problem = trio_problem () in
  let fabric = trio_fabric in
  let bp0 = Breakpoints.create ~m:3 ~n:4 in
  let shelf = Psolvers.shelf_schedule fabric ~n:4 in
  let init_cost =
    Problem.eval_base problem bp0 + Placement.cost fabric ~v:[| 2; 1; 3 |] bp0 shelf
  in
  let out =
    Psolvers.local_search ~init:(bp0, shelf) ~budget:Budget.unlimited problem
  in
  check bool "warm start never worse than its seed" true (out.Psolvers.cost <= init_cost);
  check int "warm-started cost agrees with eval"
    (Problem.eval problem out.Psolvers.bp)
    out.Psolvers.cost;
  check bool "warm-started placement valid" true
    (Result.is_ok (Placement.check fabric ~n:4 out.Psolvers.placement))

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)

let test_registry_and_guards () =
  Psolvers.ensure ();
  List.iter
    (fun name ->
      match Solver_registry.find name with
      | None -> Alcotest.failf "%s not registered" name
      | Some _ -> ())
    [ "place-shelf"; "place-dp"; "place-local" ];
  (* Base solvers refuse extended problems; placement solvers refuse
     plain ones. *)
  let extended = duo_problem () in
  let plain = Problem.without_ext extended in
  List.iter
    (fun solver ->
      if Problem.plain extended then Alcotest.fail "duo problem lost its fabric";
      check bool
        (Printf.sprintf "%s refuses plain problems" solver.Solver.name)
        false
        (solver.Solver.handles plain))
    [ Psolvers.place_shelf; Psolvers.place_dp; Psolvers.place_local ];
  match Solver_registry.find "st-dp" with
  | None -> ()
  | Some st ->
      check bool "base solver refuses the extended problem" false
        (st.Solver.handles extended)

(* ------------------------------------------------------------------ *)
(* Golden plans.                                                       *)

let golden_entries () =
  Psolvers.ensure ();
  let instances =
    [
      ("duo", duo_problem ());
      ("reuse", reuse_problem ());
      ("trio", trio_problem ());
    ]
  in
  List.concat_map
    (fun (name, problem) ->
      List.filter_map
        (fun solver ->
          if not (solver.Solver.handles problem) then None
          else
            let sol = Solver.solve solver problem in
            let placement =
              Option.value ~default:"?"
                (List.assoc_opt "placement" sol.Solution.stats)
            in
            Some
              (Telemetry.Obj
                 [
                   ("instance", Telemetry.String name);
                   ("solver", Telemetry.String sol.Solution.solver);
                   ("cost", Telemetry.Int sol.Solution.cost);
                   ("exact", Telemetry.Bool sol.Solution.exact);
                   ("placement", Telemetry.String placement);
                 ]))
        [ Psolvers.place_shelf; Psolvers.place_dp; Psolvers.place_local ])
    instances

let test_golden_plans () =
  let got = Telemetry.json_to_string (Telemetry.List (golden_entries ())) ^ "\n" in
  let path = "golden/place_plans.json" in
  let expected =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error _ -> "<missing golden>"
  in
  if got <> expected then begin
    let dump = "/tmp/place_plans_got.json" in
    let oc = open_out dump in
    output_string oc got;
    close_out oc;
    Alcotest.failf "plans deviate from %s (new document dumped to %s)" path dump
  end

(* ------------------------------------------------------------------ *)

let tests =
  [
    Alcotest.test_case "fabric check" `Quick test_fabric_check;
    Alcotest.test_case "fabric vectors lex order" `Quick test_fabric_vectors_lex;
    Alcotest.test_case "fabric residency" `Quick test_fabric_residency;
    Alcotest.test_case "static first fit" `Quick test_static_first_fit;
    Alcotest.test_case "cost hand trace" `Quick test_cost_hand_trace;
    Alcotest.test_case "strip DP hand trace" `Quick test_strip_dp_hand_trace;
    Alcotest.test_case "joint objective" `Quick test_joint_objective;
    Alcotest.test_case "placement round trip" `Quick test_placement_round_trip;
    Alcotest.test_case "schedules stay on fabric" `Quick test_schedules_stay_on_fabric;
    Alcotest.test_case "plan prices to min_reloc" `Quick test_plan_prices_to_min_reloc;
    Alcotest.test_case "place-dp matches brute" `Quick test_place_dp_differential;
    Alcotest.test_case "heuristics never below brute" `Quick
      test_heuristics_never_below_brute;
    Alcotest.test_case "budget cut-off safety" `Quick test_budget_cut_off_safety;
    Alcotest.test_case "local warm start" `Quick test_local_warm_start;
    Alcotest.test_case "registry and guards" `Quick test_registry_and_guards;
    Alcotest.test_case "golden plans" `Quick test_golden_plans;
  ]
