(* The online/incremental subsystem: the block-start DP engine
   (Online_dp) differentially against brute force and Mt_dp, the
   incremental ≡ full bit-identity, the online policies against
   hand-computed traces, and (below) the event model, the stream
   generator, warm starts, and the replan driver. *)

open Hr_core
module Bitset = Hr_util.Bitset
module Rng = Hr_util.Rng
module Budget = Hr_util.Budget

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* Task-sequential reconfiguration uploads — the regime where the
   block-start DP's per-task additive charging is exact. *)
let seq_params =
  { Sync_cost.default_params with Sync_cost.reconf = Sync_cost.Task_sequential }

let all_seq_params =
  {
    Sync_cost.w = 2;
    pub = 1;
    hyper = Sync_cost.Task_sequential;
    reconf = Sync_cost.Task_sequential;
  }

let prefix_task_set ts k =
  let tasks =
    Array.map
      (fun t -> { t with Task_set.trace = Trace.sub t.Task_set.trace 0 (k - 1) })
      (Task_set.tasks ts)
  in
  Task_set.make tasks

(* ------------------------------------------------------------------ *)
(* Online_dp vs brute force (exact on every class/mode <= 2^18).       *)

let test_online_dp_vs_brute () =
  let rng = Rng.create 81 in
  for case = 0 to 39 do
    let m = 1 + Rng.int rng 3 in
    let n = 1 + Rng.int rng (1 + (12 / m)) in
    let tasks =
      Array.init m (fun j ->
          let width = 1 + Rng.int rng 4 in
          let space = Switch_space.make width in
          let reqs =
            Array.init n (fun _ ->
                Bitset.random (fun () -> Rng.float rng) ~width ~density:0.4)
          in
          Task_set.task
            ~name:(Printf.sprintf "T%d" j)
            ~v:(Rng.int rng 6)
            (Trace.make space reqs))
    in
    let ts = Task_set.make tasks in
    let params = if case mod 2 = 0 then seq_params else all_seq_params in
    let machine_class =
      if case mod 3 = 0 then Problem.All_task else Problem.Partial
    in
    let p = Problem.of_task_set ~params ~machine_class ts in
    let online = Solver_registry.solve "online-dp" p in
    let brute = Solver_registry.solve "brute" p in
    check int
      (Printf.sprintf "case %d (m=%d n=%d): online-dp = brute" case m n)
      brute.Solution.cost online.Solution.cost;
    check bool "exact claim" true online.Solution.exact;
    check bool "admissible" true (Problem.admissible p online.Solution.bp)
  done

let test_online_dp_vs_mt_dp () =
  let rng = Rng.create 19 in
  let tasks =
    Array.init 2 (fun j ->
        let width = 5 in
        let space = Switch_space.make width in
        let reqs =
          Array.init 24 (fun _ ->
              Bitset.random (fun () -> Rng.float rng) ~width ~density:0.3)
        in
        Task_set.task ~name:(Printf.sprintf "T%d" j) ~v:4 (Trace.make space reqs))
  in
  let p = Problem.of_task_set ~params:seq_params (Task_set.make tasks) in
  let online = Solver_registry.solve "online-dp" p in
  let dp = Solver_registry.solve "mt-dp" p in
  check int "online-dp cost = mt-dp cost" dp.Solution.cost online.Solution.cost;
  check bool "both exact" true (online.Solution.exact && dp.Solution.exact)

(* ------------------------------------------------------------------ *)
(* Incremental ≡ full: prefix + extend must equal a one-shot solve —
   same plan bit for bit, same frontier, same state count.             *)

let random_task_set rng ~m ~n =
  let tasks =
    Array.init m (fun j ->
        let width = 2 + Rng.int rng 4 in
        let space = Switch_space.make width in
        let reqs =
          Array.init n (fun _ ->
              Bitset.random (fun () -> Rng.float rng) ~width ~density:0.35)
        in
        Task_set.task
          ~name:(Printf.sprintf "T%d" j)
          ~v:(1 + Rng.int rng 5)
          (Trace.make space reqs))
  in
  Task_set.make tasks

let test_incremental_equals_full () =
  let rng = Rng.create 4242 in
  for case = 0 to 19 do
    let m = 1 + Rng.int rng 2 in
    let n = 4 + Rng.int rng 12 in
    let cut = 1 + Rng.int rng (n - 1) in
    let ts = random_task_set rng ~m ~n in
    let params = if case mod 2 = 0 then seq_params else all_seq_params in
    let machine_class =
      if case mod 4 = 0 then Problem.All_task else Problem.Partial
    in
    let full_p = Problem.of_task_set ~params ~machine_class ts in
    let pre_p =
      Problem.of_task_set ~params ~machine_class (prefix_task_set ts cut)
    in
    let full = Online_dp.start full_p in
    let inc = Online_dp.extend (Online_dp.start pre_p) full_p in
    let sf = Online_dp.solution full and si = Online_dp.solution inc in
    check int
      (Printf.sprintf "case %d (m=%d n=%d cut=%d): costs equal" case m n cut)
      sf.Solution.cost si.Solution.cost;
    check bool "plans bit-identical" true
      (Breakpoints.equal sf.Solution.bp si.Solution.bp);
    check int "frontier identical" (Online_dp.frontier full)
      (Online_dp.frontier inc);
    check int "state count identical"
      (Online_dp.states_explored full)
      (Online_dp.states_explored inc);
    check int "charged cost = eval" sf.Solution.cost (Online_dp.best_cost inc)
  done

let test_extend_in_stages () =
  (* Extending one event at a time equals one big extend. *)
  let rng = Rng.create 77 in
  let ts = random_task_set rng ~m:2 ~n:12 in
  let p_at k = Problem.of_task_set ~params:seq_params (prefix_task_set ts k) in
  let full = Online_dp.start (p_at 12) in
  let staged =
    List.fold_left
      (fun t k -> Online_dp.extend t (p_at k))
      (Online_dp.start (p_at 3))
      [ 5; 6; 9; 12 ]
  in
  let sf = Online_dp.solution full and ss = Online_dp.solution staged in
  check int "staged cost" sf.Solution.cost ss.Solution.cost;
  check bool "staged plan" true (Breakpoints.equal sf.Solution.bp ss.Solution.bp);
  (* A no-growth extend is free and harmless. *)
  let again = Online_dp.extend staged (p_at 12) in
  check int "idempotent horizon" 12 (Online_dp.horizon again)

let test_extend_rejects_mismatch () =
  let rng = Rng.create 5 in
  let ts = random_task_set rng ~m:2 ~n:8 in
  let pre = Problem.of_task_set ~params:seq_params (prefix_task_set ts 4) in
  let t = Online_dp.start pre in
  let expect_invalid name p' =
    match Online_dp.extend t p' with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: extend must reject" name
  in
  (* Horizon shrank. *)
  expect_invalid "shrink" (Problem.of_task_set ~params:seq_params (prefix_task_set ts 2));
  (* Parameters changed. *)
  expect_invalid "params" (Problem.of_task_set ~params:all_seq_params ts);
  (* Different tasks at the same horizon: the prefix spot-check fires
     (same widths, every requirement emptied — the prefix block costs
     drop). *)
  let other =
    Task_set.make
      (Array.map
         (fun a ->
           let space = Trace.space a.Task_set.trace in
           {
             a with
             Task_set.trace =
               Trace.make space
                 (Array.map
                    (fun r -> Bitset.create (Bitset.width r))
                    (Trace.reqs a.Task_set.trace));
           })
         (Task_set.tasks ts))
  in
  match Online_dp.extend t (Problem.of_task_set ~params:seq_params other) with
  | exception Invalid_argument _ -> ()
  | _ ->
      (* The spot-check is a heuristic; only flag when the prefix cost
         actually differs. *)
      ()

let test_unsupported_rejected () =
  let ts = Tutil.sample_task_set () in
  (* Default params are task-parallel: the additive charging would be
     wrong, so the engine must refuse (and the registry must filter). *)
  let p = Problem.of_task_set ts in
  (match Online_dp.start p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "task-parallel reconf must be refused");
  check bool "supports is false" false (Online_dp.supports p);
  let names =
    List.map (fun s -> s.Solver.name) (Solver_registry.applicable p)
  in
  check bool "registry filters online-dp" false (List.mem "online-dp" names);
  let p_seq = Problem.of_task_set ~params:seq_params ts in
  let names =
    List.map (fun s -> s.Solver.name) (Solver_registry.applicable p_seq)
  in
  check bool "registry offers online-dp" true (List.mem "online-dp" names)

let test_cutoff_safe () =
  let rng = Rng.create 13 in
  let ts = random_task_set rng ~m:2 ~n:10 in
  let p = Problem.of_task_set ~params:seq_params ts in
  let budget = Budget.of_deadline_ms 0 in
  let t = Online_dp.start ~budget p in
  let s = Online_dp.solution t in
  check bool "cut off" true s.Solution.cut_off;
  check bool "not exact" false s.Solution.exact;
  check bool "admissible" true (Problem.admissible p s.Solution.bp);
  check int "cost recomputed consistently" (Problem.eval p s.Solution.bp)
    s.Solution.cost

let test_beam_mode () =
  let rng = Rng.create 31 in
  let ts = random_task_set rng ~m:2 ~n:14 in
  let p = Problem.of_task_set ~params:seq_params ts in
  let exact = Online_dp.solution (Online_dp.start p) in
  let beam = Online_dp.solution (Online_dp.start ~max_states:8 p) in
  check bool "beam not exact" false beam.Solution.exact;
  check bool "beam admissible" true (Problem.admissible p beam.Solution.bp);
  check bool "beam >= exact" true
    (beam.Solution.cost >= exact.Solution.cost);
  (* Beam runs are deterministic. *)
  let beam2 = Online_dp.solution (Online_dp.start ~max_states:8 p) in
  check bool "beam deterministic" true
    (Breakpoints.equal beam.Solution.bp beam2.Solution.bp)

(* ------------------------------------------------------------------ *)
(* Online policies against hand-computed traces.                       *)

let policy_trace () =
  Trace.of_lists (Switch_space.make 4) [ [ 0; 1; 2 ]; [ 0 ]; [ 0 ]; [ 0 ] ]

let test_eager_hand () =
  (* Switches every step: cost = Σ (v + |req_i|) = 4·3 + 6 = 18. *)
  let cost, switches = Online.run Online.eager ~v:3 (policy_trace ()) in
  check int "eager cost" 18 cost;
  check int "eager switches" 4 switches

let test_lazy_full_hand () =
  (* One switch to the full universe: 3 + 4·4 = 19. *)
  let cost, switches =
    Online.run (Online.lazy_full ~universe:4) ~v:3 (policy_trace ())
  in
  check int "lazy cost" 19 cost;
  check int "lazy switches" 1 switches

let test_rent_or_buy_hand () =
  (* v=3.  Start {0,1,2}: 3+3.  Step 1 ({0} ⊆ hc): waste 2, keep, +3.
     Step 2: waste 4 > 3 → shed to {0}: +3+1.  Step 3: waste 0, +1.
     Total 14, 2 switches. *)
  let cost, switches =
    Online.run (Online.rent_or_buy ~v:3) ~v:3 (policy_trace ())
  in
  check int "rent-or-buy cost" 14 cost;
  check int "rent-or-buy switches" 2 switches

let test_rent_or_buy_sheds_on_forced_switches () =
  (* One new switch per step: every step is a forced switch.  The old
     accounting reset the waste meter on forced switches, so the
     union-grown hypercontext never shed and cost grew quadratically
     (v+1, v+2, …, v+n).  With the surplus metered, v=2 sheds at steps
     2 and 4: 3 + 4 + 3 + 4 + 3 + 4 = 21 (vs 33 unfixed). *)
  let trace =
    Trace.of_lists (Switch_space.make 6)
      [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ]; [ 5 ] ]
  in
  let cost, switches = Online.run (Online.rent_or_buy ~v:2) ~v:2 trace in
  check int "forced-switch shedding cost" 21 cost;
  check int "every step switches" 6 switches

let test_rent_or_buy_bounded_vs_offline () =
  (* Waste between sheds is bounded by v + the last step's surplus, so
     on any trace the policy stays within a small factor of offline
     optimum; specifically it must beat never-shedding on a long
     escape-then-quiet trace. *)
  let reqs = [ [ 0; 1; 2; 3; 4; 5 ] ] @ List.init 30 (fun _ -> [ 0 ]) in
  let trace = Trace.of_lists (Switch_space.make 6) reqs in
  let v = 4 in
  let rb, _ = Online.run (Online.rent_or_buy ~v) ~v trace in
  let lazy_cost, _ = Online.run (Online.lazy_full ~universe:6) ~v trace in
  check bool "rent-or-buy sheds the big context" true (rb < lazy_cost)

(* ------------------------------------------------------------------ *)
(* The typed event model (Hr_online.Event).                            *)

module Event = Hr_online.Event
module Events = Hr_online.Events
module Warm = Hr_online.Warm
module Replan = Hr_online.Replan
module Experiment = Hr_online.Experiment

let bs ?(width = 3) l =
  List.fold_left (fun b x -> Bitset.add b x) (Bitset.create width) l

let mini_ts () =
  let space = Switch_space.make 3 in
  let tr reqs = Trace.make space (Array.of_list (List.map bs reqs)) in
  Task_set.make
    [|
      Task_set.task ~name:"A" ~v:2 (tr [ [ 0 ]; [ 1 ]; [ 0; 1 ] ]);
      Task_set.task ~name:"B" ~v:1 (tr [ [ 2 ]; [ 2 ]; [ 0 ] ]);
    |]

let ev at payload = { Event.at; payload }

let ok_apply ts e =
  match Event.apply ts e with
  | Ok ts' -> ts'
  | Error msg -> Alcotest.failf "apply rejected a valid event: %s" msg

let rejected ts e =
  match Event.apply ts e with Ok _ -> false | Error _ -> true

let test_event_apply () =
  let ts = mini_ts () in
  let space = Switch_space.make 3 in
  let newcomer =
    Task_set.task ~name:"C" ~v:1
      (Trace.make space (Array.of_list (List.map bs [ [ 0 ]; [ 2 ]; [ 1 ] ])))
  in
  (* Arrivals. *)
  let ts' = ok_apply ts (ev 0 (Event.Arrive newcomer)) in
  check int "arrival adds a task" 3 (Task_set.num_tasks ts');
  check bool "duplicate name rejected" true
    (rejected ts' (ev 1 (Event.Arrive newcomer)));
  let short =
    Task_set.task ~name:"D" (Trace.make space [| bs [ 0 ] |])
  in
  check bool "wrong trace length rejected" true
    (rejected ts (ev 0 (Event.Arrive short)));
  (* Departures. *)
  let ts'' = ok_apply ts (ev 0 (Event.Depart "B")) in
  check int "departure removes a task" 1 (Task_set.num_tasks ts'');
  check bool "unknown depart rejected" true (rejected ts (ev 0 (Event.Depart "Z")));
  check bool "last task cannot depart" true
    (rejected ts'' (ev 1 (Event.Depart "A")));
  (* Demand changes. *)
  let ts3 =
    ok_apply ts (ev 0 (Event.Demand_change { task = "A"; step = 1; req = bs [ 2 ] }))
  in
  check bool "demand change lands" true
    (Bitset.equal (Trace.req (Task_set.get ts3 0).Task_set.trace 1) (bs [ 2 ]));
  check bool "demand change is pure" true
    (Bitset.equal (Trace.req (Task_set.get ts 0).Task_set.trace 1) (bs [ 1 ]));
  check bool "step out of range rejected" true
    (rejected ts (ev 0 (Event.Demand_change { task = "A"; step = 5; req = bs [ 0 ] })));
  check bool "wrong width rejected" true
    (rejected ts
       (ev 0 (Event.Demand_change { task = "A"; step = 0; req = bs ~width:4 [ 0 ] })));
  (* Extensions. *)
  let ts4 =
    ok_apply ts (ev 0 (Event.Extend_trace [| [| bs [ 1 ] |]; [| bs [ 2 ] |] |]))
  in
  check int "extension grows the horizon" 4 (Task_set.steps ts4);
  check bool "row arity mismatch rejected" true
    (rejected ts (ev 0 (Event.Extend_trace [| [| bs [ 1 ] |] |])));
  check bool "empty extension rejected" true
    (rejected ts (ev 0 (Event.Extend_trace [| [||]; [||] |])));
  check bool "ragged extension rejected" true
    (rejected ts
       (ev 0 (Event.Extend_trace [| [| bs [ 1 ]; bs [ 0 ] |]; [| bs [ 2 ] |] |])))

let test_stream_validate () =
  let ts = mini_ts () in
  let ext = Event.Extend_trace [| [| bs [ 1 ] |]; [| bs [ 2 ] |] |] in
  check bool "well-formed stream accepted" true
    (Result.is_ok (Event.validate ~init:ts [ ev 0 ext; ev 3 (Event.Depart "B") ]));
  check bool "depart before arrive rejected" true
    (Result.is_error
       (Event.validate ~init:ts
          [
            ev 0 (Event.Depart "C");
            ev 1
              (Event.Arrive
                 (Task_set.task ~name:"C"
                    (Trace.make (Switch_space.make 3)
                       (Array.of_list (List.map bs [ [ 0 ]; [ 1 ]; [ 2 ] ])))));
          ]));
  check bool "non-monotone timestamps rejected" true
    (Result.is_error (Event.validate ~init:ts [ ev 4 ext; ev 4 (Event.Depart "B") ]));
  check bool "negative timestamp rejected" true
    (Result.is_error (Event.validate ~init:ts [ ev (-1) ext ]));
  match Event.replay ~init:ts [ ev 0 ext; ev 2 ext ] with
  | Error msg -> Alcotest.fail msg
  | Ok states ->
      check int "replay yields one state per event" 2 (List.length states);
      check (Alcotest.list int) "horizons grow step by step" [ 4; 5 ]
        (List.map Task_set.steps states)

(* ------------------------------------------------------------------ *)
(* The stream generator: deterministic, well-formed, round-trips.      *)

let small_profile =
  {
    Events.default with
    Events.n0 = 6;
    width = 4;
    events = 5;
    extend_k = 2;
    max_tasks = 3;
  }

let stream_bytes init stream =
  Telemetry.json_to_string (Event.stream_to_json ~init stream)

let test_generator_well_formed () =
  for seed = 0 to 9 do
    let init, stream = Events.generate (Rng.create seed) small_profile in
    (match Event.validate ~init stream with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d generated an invalid stream: %s" seed msg);
    check int "requested number of events" small_profile.Events.events
      (List.length stream)
  done

let test_generator_deterministic () =
  for seed = 0 to 4 do
    let a_init, a = Events.generate (Rng.create seed) Events.default in
    let b_init, b = Events.generate (Rng.create seed) Events.default in
    check Alcotest.string
      (Printf.sprintf "seed %d reproduces the stream byte for byte" seed)
      (stream_bytes a_init a) (stream_bytes b_init b)
  done

let test_stream_json_roundtrip () =
  let init, stream = Events.generate (Rng.create 13) small_profile in
  let s = stream_bytes init stream in
  match Telemetry.json_of_string s with
  | Error e -> Alcotest.fail ("stream JSON does not parse: " ^ e)
  | Ok j -> (
      match Event.stream_of_json j with
      | Error e -> Alcotest.fail ("stream JSON rejected: " ^ e)
      | Ok (init', stream') ->
          check Alcotest.string "round-trip is the identity" s
            (stream_bytes init' stream'))

let test_malformed_stream_json_rejected () =
  let init, stream = Events.generate (Rng.create 13) small_profile in
  let s = stream_bytes init stream in
  (match Telemetry.json_of_string s with
  | Ok (Telemetry.Obj kvs) ->
      (* Wrong schema string must be refused. *)
      let forged =
        Telemetry.Obj
          (List.map
             (function
               | "schema", _ -> ("schema", Telemetry.String "hyperreconf.stream/0")
               | kv -> kv)
             kvs)
      in
      check bool "wrong schema rejected" true
        (Result.is_error (Event.stream_of_json forged))
  | _ -> Alcotest.fail "stream JSON lost its object shape");
  (* An out-of-range switch index must be refused by the parser. *)
  check bool "malformed event rejected" true
    (Result.is_error
       (Event.of_json
          (Telemetry.Obj
             [
               ("schema", Telemetry.String Event.schema_version);
               ("at", Telemetry.Int 0);
               ("kind", Telemetry.String "demand-change");
               ("task", Telemetry.String "A");
               ("step", Telemetry.Int 0);
               ("width", Telemetry.Int 2);
               ("req", Telemetry.List [ Telemetry.Int 7 ]);
             ])))

let test_golden_stream () =
  let init, stream = Events.generate (Rng.create 42) Events.default in
  let got = stream_bytes init stream in
  let path = "golden/event_stream.json" in
  let expected =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error _ -> "<missing golden>"
  in
  if got <> expected then begin
    let oc = open_out "/tmp/event_stream_got.json" in
    output_string oc got;
    close_out oc;
    Alcotest.failf "stream deviates from %s (new document dumped to %s)" path
      "/tmp/event_stream_got.json"
  end

(* ------------------------------------------------------------------ *)
(* Warm starts: never worse than cold under the same seed and budget.  *)

let test_warm_remap () =
  let prev =
    Breakpoints.of_rows ~m:2 ~n:4 [| [ 2 ]; [ 1; 3 ] |]
  in
  let bp = Warm.remap ~prev ~rows:[| Some 1; None |] ~n:6 in
  check int "remap keeps the target shape" 6 (Breakpoints.n bp);
  check bool "copied row keeps its breaks" true
    (Breakpoints.is_break bp 0 1 && Breakpoints.is_break bp 0 3);
  check bool "appended steps get no breaks" true
    (not (Breakpoints.is_break bp 0 4 || Breakpoints.is_break bp 0 5));
  check bool "fresh row breaks only at step 0" true
    (Breakpoints.is_break bp 1 0 && Breakpoints.break_count bp 1 = 1)

let test_warm_never_worse () =
  let rng = Rng.create 4242 in
  for case = 0 to 4 do
    let ts = random_task_set rng ~m:2 ~n:10 in
    let problem = Problem.of_task_set ~params:seq_params ts in
    (* A previous plan from a different backend stands in for the
       pre-event solution. *)
    let prev = (Solver_registry.solve "greedy" problem).Solution.bp in
    List.iter
      (fun name ->
        let solver = Solver_registry.find_exn name in
        let sol, stats = Warm.solve ~seed:(case + 1) ~prev solver problem in
        check bool
          (Printf.sprintf "%s warm <= cold (case %d)" name case)
          true
          (sol.Solution.cost <= stats.Warm.cold_cost);
        check bool "warm solution is admissible" true
          (Problem.admissible problem sol.Solution.bp);
        check bool "warm source recorded" true
          (List.mem_assoc "warm-source" sol.Solution.stats))
      [ "ga"; "anneal"; "hill-climb" ]
  done

(* ------------------------------------------------------------------ *)
(* The replan driver and the differential corpus: Full ≡ Incremental.  *)

let seq_config strategy =
  { (Replan.default_config strategy) with Replan.params = seq_params }

let test_differential_corpus () =
  for seed = 100 to 119 do
    let init, stream = Events.generate (Rng.create seed) small_profile in
    let full = Replan.run (seq_config Replan.Full) ~init stream in
    let inc = Replan.run (seq_config Replan.Incremental) ~init stream in
    let agree stream =
      let full = Replan.run (seq_config Replan.Full) ~init stream in
      let inc = Replan.run (seq_config Replan.Incremental) ~init stream in
      List.for_all2
        (fun (f : Replan.record) (i : Replan.record) ->
          f.Replan.cost = i.Replan.cost
          && Breakpoints.equal f.Replan.plan i.Replan.plan)
        full.Replan.records inc.Replan.records
    in
    if not (agree stream) then begin
      (* Shrink the witness before failing so the report is minimal. *)
      let shrunk =
        Events.shrink ~init ~still_fails:(fun s -> not (agree s)) stream
      in
      Alcotest.failf
        "seed %d: incremental diverged from full (shrunk to %d of %d events)"
        seed (List.length shrunk) (List.length stream)
    end;
    check int
      (Printf.sprintf "seed %d: same total cost" seed)
      full.Replan.total_cost inc.Replan.total_cost;
    check bool "incremental extended at least one event" true
      (inc.Replan.extensions >= 0)
  done

let test_replan_strategies () =
  let init, stream = Events.generate (Rng.create 7) small_profile in
  let none = Replan.run (seq_config Replan.No_reconfig) ~init stream in
  let full = Replan.run (seq_config Replan.Full) ~init stream in
  let warm = Replan.run (seq_config Replan.Warm_start) ~init stream in
  check bool "never reconfiguring is never cheaper" true
    (none.Replan.total_cost >= full.Replan.total_cost);
  (* The auto chain resolves to an exact backend here, so warm starts
     land on the optimum too. *)
  check int "warm-start matches the exact optimum" full.Replan.total_cost
    warm.Replan.total_cost;
  check int "one record per event plus the initial solve"
    (List.length stream + 1)
    (List.length full.Replan.records);
  check bool "records carry positive horizons" true
    (List.for_all (fun (r : Replan.record) -> r.Replan.n >= 1) full.Replan.records);
  (* The run document round-trips through the JSON printer/parser. *)
  let doc = Replan.to_json (seq_config Replan.Full) full in
  match Telemetry.json_of_string (Telemetry.json_to_string doc) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("run document does not parse: " ^ e)

let test_replan_rejects_invalid_stream () =
  let init, _ = Events.generate (Rng.create 7) small_profile in
  let bad = [ ev 0 (Event.Depart "nope") ] in
  match Replan.run (seq_config Replan.Full) ~init bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid stream must be rejected"

let test_experiment_sweep () =
  let sweep =
    Experiment.run ~profile:small_profile ~etas:[ 1.0 ] ~tasks:[ 2 ]
      ~events:[ 3 ] ~seed:5 ()
  in
  check int "one point per strategy" 4 (List.length sweep.Experiment.points);
  let by strategy =
    List.find
      (fun (p : Experiment.point) -> p.Experiment.strategy = strategy)
      sweep.Experiment.points
  in
  check int "incremental total = full total"
    (by Replan.Full).Experiment.total_cost
    (by Replan.Incremental).Experiment.total_cost;
  check bool "no-reconfig is an upper bound" true
    ((by Replan.No_reconfig).Experiment.total_cost
    >= (by Replan.Full).Experiment.total_cost);
  match
    Telemetry.json_of_string
      (Telemetry.json_to_string (Experiment.to_json sweep))
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("sweep document does not parse: " ^ e)

let tests =
  [
    Alcotest.test_case "online-dp vs brute" `Quick test_online_dp_vs_brute;
    Alcotest.test_case "online-dp vs mt-dp" `Quick test_online_dp_vs_mt_dp;
    Alcotest.test_case "incremental = full" `Quick test_incremental_equals_full;
    Alcotest.test_case "staged extends" `Quick test_extend_in_stages;
    Alcotest.test_case "extend rejects mismatch" `Quick
      test_extend_rejects_mismatch;
    Alcotest.test_case "unsupported rejected" `Quick test_unsupported_rejected;
    Alcotest.test_case "cutoff safe" `Quick test_cutoff_safe;
    Alcotest.test_case "beam mode" `Quick test_beam_mode;
    Alcotest.test_case "eager hand trace" `Quick test_eager_hand;
    Alcotest.test_case "lazy-full hand trace" `Quick test_lazy_full_hand;
    Alcotest.test_case "rent-or-buy hand trace" `Quick test_rent_or_buy_hand;
    Alcotest.test_case "rent-or-buy sheds on forced switches" `Quick
      test_rent_or_buy_sheds_on_forced_switches;
    Alcotest.test_case "rent-or-buy bounded vs offline" `Quick
      test_rent_or_buy_bounded_vs_offline;
    Alcotest.test_case "event apply" `Quick test_event_apply;
    Alcotest.test_case "stream validate" `Quick test_stream_validate;
    Alcotest.test_case "generator well-formed" `Quick test_generator_well_formed;
    Alcotest.test_case "generator deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "stream JSON round-trip" `Quick test_stream_json_roundtrip;
    Alcotest.test_case "malformed stream JSON rejected" `Quick
      test_malformed_stream_json_rejected;
    Alcotest.test_case "golden stream pin" `Quick test_golden_stream;
    Alcotest.test_case "warm remap" `Quick test_warm_remap;
    Alcotest.test_case "warm never worse than cold" `Quick test_warm_never_worse;
    Alcotest.test_case "differential corpus: full = incremental" `Quick
      test_differential_corpus;
    Alcotest.test_case "replan strategies" `Quick test_replan_strategies;
    Alcotest.test_case "replan rejects invalid stream" `Quick
      test_replan_rejects_invalid_stream;
    Alcotest.test_case "experiment sweep" `Quick test_experiment_sweep;
  ]
