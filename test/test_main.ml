let () =
  Alcotest.run "hyperreconf"
    [
      ("bitset", Suite_bitset.tests);
      ("util", Suite_util.tests);
      ("trace", Suite_trace.tests);
      ("st_opt", Suite_st_opt.tests);
      ("sync_cost", Suite_sync_cost.tests);
      ("mt", Suite_mt.tests);
      ("solver", Suite_solver.tests);
      ("dag", Suite_dag.tests);
      ("general", Suite_general.tests);
      ("changeover", Suite_changeover.tests);
      ("classes", Suite_classes.tests);
      ("async", Suite_async.tests);
      ("moves", Suite_moves.tests);
      ("modes", Suite_modes.tests);
      ("priv", Suite_priv.tests);
      ("sync_rules", Suite_sync_rules.tests);
      ("evolve", Suite_evolve.tests);
      ("workload", Suite_workload.tests);
      ("viz", Suite_viz.tests);
      ("shyra", Suite_shyra.tests);
      ("rmesh", Suite_rmesh.tests);
      ("vm", Suite_vm.tests);
      ("wave3", Suite_wave3.tests);
      ("wave4", Suite_wave4.tests);
      ("fuzz", Suite_fuzz.tests);
      ("check", Suite_check.tests);
      ("batch", Suite_batch.tests);
      ("serve", Suite_serve.tests);
      ("table_cache", Suite_table_cache.tests);
      ("expr", Suite_expr.tests);
      ("robust", Suite_robust.tests);
      ("online", Suite_online.tests);
      ("place", Suite_place.tests);
      ("sparse", Suite_sparse.tests);
    ]
