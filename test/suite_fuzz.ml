(* Fuzzing: random SHyRA programs and random mesh configurations must
   uphold the structural invariants, and Plan_io round-trips. *)

open Hr_core
module Shyra = Hr_shyra
module Rng = Hr_util.Rng
module Bitset = Hr_util.Bitset

(* Generator of syntactically valid random instruction streams. *)
let gen_program =
  let open QCheck2.Gen in
  let gen_lut = map Shyra.Lut.of_table (int_bound 255) in
  let gen_instr =
    oneof
      [
        map (fun l -> Shyra.Asm.Lut1 l) gen_lut;
        map (fun l -> Shyra.Asm.Lut2 l) gen_lut;
        map2 (fun l r -> Shyra.Asm.Sel (l, r)) (int_bound 5) (int_bound 9);
        map2
          (fun l r -> Shyra.Asm.Route (l, if r = 10 then None else Some r))
          (int_bound 1) (int_bound 10);
      ]
  in
  (* Cycles of a few instructions each, each ending in a commit. *)
  list_size (int_range 1 12)
    (map2
       (fun instrs k -> instrs @ [ Shyra.Asm.Commit (Printf.sprintf "c%d" k) ])
       (list_size (int_bound 6) gen_instr)
       (int_bound 99))
  |> map List.concat

let show_program instrs = Shyra.Asm_text.print instrs

(* Route collisions are rejected by Config.make at commit time; a fuzzed
   stream may legitimately produce them, so assembly either succeeds or
   raises that specific error. *)
let try_assemble instrs =
  match Shyra.Asm.assemble instrs with
  | program -> Some program
  | exception Invalid_argument msg
    when Astring.String.is_infix ~affix:"DeMUX" msg ->
      None

let prop_fuzz_asm_invariants =
  Tutil.prop "fuzzed programs assemble, run and trace consistently" gen_program
    show_program
    (fun instrs ->
      match try_assemble instrs with
      | None -> true
      | Some program ->
          let n = Shyra.Program.length program in
          let commits =
            List.length
              (List.filter (function Shyra.Asm.Commit _ -> true | _ -> false) instrs)
          in
          (* One cycle per commit. *)
          n = commits
          && (* The machine never corrupts register-file arity. *)
          Array.length (Shyra.Machine.registers (Shyra.Program.run program (Shyra.Machine.create ()))) = 10
          && (* Trace extraction: diff ⊆ field-diff at every step, widths
                are the configuration width. *)
          (let diff = Shyra.Tracer.trace ~mode:Shyra.Tracer.Diff program in
           let field = Shyra.Tracer.trace ~mode:Shyra.Tracer.Field_diff program in
           List.for_all
             (fun i ->
               Bitset.subset (Trace.req diff i) (Trace.req field i)
               && Bitset.width (Trace.req diff i) = 48)
             (List.init n Fun.id))
          && (* Text round-trip preserves the program. *)
          (match Shyra.Asm_text.parse (Shyra.Asm_text.print instrs) with
          | Ok reparsed -> reparsed = instrs
          | Error _ -> false))

let prop_fuzz_mesh_buses =
  (* Random mesh configurations: bus ids are total, stable under
     re-resolution, and respect PE-internal fusing and neighbour
     wiring. *)
  Tutil.prop "fuzzed mesh configurations resolve consistently"
    QCheck2.Gen.(
      triple (int_range 1 5) (int_range 1 5)
        (pair (int_bound 10_000) (int_bound 10_000)))
    (fun (r, c, (s1, s2)) -> Printf.sprintf "rows=%d cols=%d seeds=%d,%d" r c s1 s2)
    (fun (rows, cols, (s1, _)) ->
      let open Hr_rmesh in
      let rng = Rng.create s1 in
      let grid = Grid.create ~rows ~cols in
      let config =
        Array.init rows (fun _ ->
            Array.init cols (fun _ -> Partition.of_code (Rng.int rng 15)))
      in
      let buses = Grid.resolve grid config in
      let ok = ref true in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          (* Fused ports share a bus; unfused ports may or may not
             (they can reconnect through neighbours). *)
          List.iter
            (fun group ->
              match group with
              | first :: rest ->
                  List.iter
                    (fun p ->
                      if
                        Grid.bus_id buses ~row:r ~col:c p
                        <> Grid.bus_id buses ~row:r ~col:c first
                      then ok := false)
                    rest
              | [] -> ())
            (Partition.groups config.(r).(c));
          (* Neighbour wiring. *)
          if
            c + 1 < cols
            && Grid.bus_id buses ~row:r ~col:c Port.E
               <> Grid.bus_id buses ~row:r ~col:(c + 1) Port.W
          then ok := false;
          if
            r + 1 < rows
            && Grid.bus_id buses ~row:r ~col:c Port.S
               <> Grid.bus_id buses ~row:(r + 1) ~col:c Port.N
          then ok := false
        done
      done;
      (* Bus count is within bounds. *)
      !ok
      && Grid.num_buses buses >= 1
      && Grid.num_buses buses <= rows * cols * 4)

let prop_plan_io_roundtrip =
  Tutil.prop "Plan_io roundtrips"
    QCheck2.Gen.(triple (int_range 1 5) (int_range 1 12) (int_bound 10_000))
    (fun (m, n, seed) -> Printf.sprintf "m=%d n=%d seed=%d" m n seed)
    (fun (m, n, seed) ->
      let rng = Rng.create seed in
      let bp = Breakpoints.of_matrix (Mt_moves.random rng ~m ~n ~density:0.4) in
      Breakpoints.equal bp (Plan_io.of_string (Plan_io.to_string bp)))

(* The conformance generator feeding the full differential harness:
   every registered backend on every fuzzed case must satisfy the whole
   invariant catalogue (admissibility, cost consistency, brute
   agreement, …).  A small count — the exhaustive sweep is the hrcheck
   CLI's job. *)
let prop_conformance_harness_clean =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25
       ~name:"fuzzed conformance cases: all solvers uphold all invariants"
       ~print:(fun seed ->
         Hr_check.Case.to_string (Hr_check.Gen.case (Rng.create seed)))
       QCheck2.Gen.(int_bound 1_000_000)
       (fun seed ->
         let case = Hr_check.Gen.case (Rng.create seed) in
         match Hr_check.Runner.check_case ~seed case with
         | [] -> true
         | (solver, invariant, detail) :: _ ->
             QCheck2.Test.fail_reportf "%s violated %s: %s" solver invariant
               detail))

let test_plan_io_errors () =
  let bad =
    [ ""; "plan 1 2\n.#"; "plan 2 2\n#."; "plan 1 2\n#x"; "plan 1 3\n##" ]
  in
  List.iter
    (fun s ->
      match Plan_io.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    bad

let tests =
  [
    prop_fuzz_asm_invariants;
    prop_fuzz_mesh_buses;
    prop_plan_io_roundtrip;
    prop_conformance_harness_clean;
    Alcotest.test_case "plan io errors" `Quick test_plan_io_errors;
  ]
