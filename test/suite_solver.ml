(* The Problem/Solver layer and the registry: lookups, capability
   predicates, cost consistency across backends, exactness claims
   cross-checked against brute force, and the determinism of the
   parallel solver race. *)

open Hr_core
module Rng = Hr_util.Rng

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let sample_problem () = Problem.of_task_set (Tutil.sample_task_set ())

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Registry lookups.                                                   *)

let test_registry_names () =
  let names = Solver_registry.names () in
  List.iter
    (fun n ->
      check bool (Printf.sprintf "%s registered" n) true (List.mem n names))
    [ "st-dp"; "all-task"; "mt-dp"; "mt-beam"; "greedy"; "hill-climb";
      "anneal"; "ga"; "ga-polish"; "brute"; "async-opt"; "mode-climb" ];
  check bool "find hit" true (Solver_registry.find "ga" <> None);
  check bool "find miss" true (Solver_registry.find "no-such-solver" = None);
  check int "all() agrees with names()"
    (List.length names)
    (List.length (Solver_registry.all ()))

let test_find_exn_unknown () =
  match Solver_registry.find_exn "no-such-solver" with
  | exception Invalid_argument msg ->
      check bool "message lists known names" true (contains msg "st-dp")
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_register_duplicate () =
  let ga = Solver_registry.find_exn "ga" in
  (match Solver_registry.register ga with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate registration must raise");
  (* Re-registering the same solver with ~override is allowed. *)
  Solver_registry.register ~override:true ga

let test_capability_predicates () =
  let p = sample_problem () in
  let applicable =
    List.map (fun s -> s.Solver.name) (Solver_registry.applicable p)
  in
  (* m = 2, so the single-task DP must be filtered out; the
     fully-synchronized backends must all be present. *)
  check bool "st-dp filtered out" false (List.mem "st-dp" applicable);
  check bool "mode-climb filtered out" false (List.mem "mode-climb" applicable);
  List.iter
    (fun n -> check bool (n ^ " applicable") true (List.mem n applicable))
    [ "mt-dp"; "brute"; "ga"; "greedy" ];
  (* Solving with an inapplicable solver is refused with the typed
     rejection, not a bare Invalid_argument a crash could hide behind. *)
  match Solver.solve (Solver_registry.find_exn "st-dp") p with
  | exception Solver.Rejected msg ->
      check bool "rejection names the solver" true (contains msg "st-dp")
  | exception e ->
      Alcotest.fail ("expected Solver.Rejected, got " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "st-dp on an m=2 instance must raise"

let test_mode_routing () =
  let ts = Tutil.sample_task_set () in
  let async = Problem.of_task_set ~mode:Mixed_sync.Non_synchronized ts in
  let names =
    List.map (fun s -> s.Solver.name) (Solver_registry.applicable async)
  in
  check bool "async-opt handles non-sync" true (List.mem "async-opt" names);
  check bool "ga refuses non-sync" false (List.mem "ga" names);
  let inter = Problem.of_task_set ~mode:Mixed_sync.Context_synchronized ts in
  let names =
    List.map (fun s -> s.Solver.name) (Solver_registry.applicable inter)
  in
  check bool "mode-climb handles intermediate modes" true
    (List.mem "mode-climb" names)

(* ------------------------------------------------------------------ *)
(* Solution helpers.                                                   *)

let test_solution_best_prefers_exact () =
  let bp = Breakpoints.create ~m:1 ~n:3 in
  let mk solver exact cost = Solution.make ~solver ~exact ~cost bp in
  let best =
    Solution.best [ mk "a" false 10; mk "b" true 10; mk "c" false 12 ]
  in
  check bool "exact wins cost ties" true (best.Solution.solver = "b");
  let best = Solution.best [ mk "a" false 9; mk "b" true 10 ] in
  check bool "but cost dominates" true (best.Solution.solver = "a");
  match Solution.best [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "best [] must raise"

(* ------------------------------------------------------------------ *)
(* Cross-backend invariants on random instances.                       *)

let qcheck_st_dp_matches_st_opt =
  Tutil.prop "registry st-dp == St_opt on single-task instances"
    (Tutil.gen_st_instance ~max_n:10 ~max_width:5)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let sol =
        Solver_registry.solve "st-dp" (Problem.of_trace ~v:inst.Tutil.v trace)
      in
      let r, _ = St_opt.solve_trace ~v:inst.Tutil.v trace in
      sol.Solution.cost = r.St_opt.cost
      && Solution.task_breaks sol 0 = r.St_opt.breaks
      && sol.Solution.exact)

let qcheck_costs_consistent_and_bounded =
  Tutil.prop "every backend: cost = Problem.eval bp, >= brute optimum; exact claims match brute"
    (Tutil.gen_mt_instance ~max_m:3 ~max_n:5 ~max_width:4)
    Tutil.show_mt_instance
    (fun inst ->
      let problem = Problem.of_task_set (Tutil.task_set_of_instance inst) in
      let optimum = (Solver_registry.solve "brute" problem).Solution.cost in
      List.for_all
        (fun s ->
          let sol = Solver.solve ~seed:7 s problem in
          sol.Solution.cost = Problem.eval problem sol.Solution.bp
          && sol.Solution.cost >= optimum
          && ((not sol.Solution.exact) || sol.Solution.cost = optimum))
        (Solver_registry.applicable problem))

let qcheck_race_equals_best_sequential =
  Tutil.prop "race == best sequential backend"
    (Tutil.gen_mt_instance ~max_m:3 ~max_n:5 ~max_width:4)
    Tutil.show_mt_instance
    (fun inst ->
      let problem = Problem.of_task_set (Tutil.task_set_of_instance inst) in
      let names = [ "greedy"; "hill-climb"; "all-task" ] in
      let raced = Solver_registry.race ~domains:2 ~seed:11 ~names problem in
      let best_seq =
        Solution.best
          (List.map (fun n -> Solver_registry.solve ~seed:11 n problem) names)
      in
      raced.Solution.cost = best_seq.Solution.cost)

let qcheck_precompute_transparent =
  Tutil.prop "Interval_cost.precompute preserves every query"
    (Tutil.gen_mt_instance ~max_m:3 ~max_n:6 ~max_width:4)
    Tutil.show_mt_instance
    (fun inst ->
      let raw = Tutil.oracle_of_instance inst in
      let dense = Interval_cost.precompute raw in
      let ok = ref true in
      for j = 0 to raw.Interval_cost.m - 1 do
        for lo = 0 to raw.Interval_cost.n - 1 do
          for hi = lo to raw.Interval_cost.n - 1 do
            if
              dense.Interval_cost.step_cost j lo hi
              <> raw.Interval_cost.step_cost j lo hi
            then ok := false
          done
        done
      done;
      !ok)

let qcheck_beam_bounded_below_by_exact =
  Tutil.prop "mt-beam >= mt-dp and never claims exactness"
    (Tutil.gen_mt_instance ~max_m:3 ~max_n:5 ~max_width:4)
    Tutil.show_mt_instance
    (fun inst ->
      let problem = Problem.of_task_set (Tutil.task_set_of_instance inst) in
      let beam = Solver_registry.solve "mt-beam" problem in
      let exact = Solver_registry.solve "mt-dp" problem in
      beam.Solution.cost >= exact.Solution.cost
      && (not beam.Solution.exact)
      && exact.Solution.exact)

let test_beam_truncation_stays_inexact () =
  (* Even a beam wide enough that the frontier is never truncated must
     not claim exactness: the block-end fan-out is restricted too. *)
  let oracle = Interval_cost.of_task_set (Tutil.sample_task_set ()) in
  let beam = Mt_dp.solve ~max_states:1_000_000 oracle in
  check bool "wide beam still inexact" false beam.Mt_dp.exact;
  let tight = Mt_dp.solve ~max_states:1 oracle in
  check bool "tight beam inexact" false tight.Mt_dp.exact;
  check int "tight beam cost consistent"
    (Sync_cost.eval oracle tight.Mt_dp.bp)
    tight.Mt_dp.cost

let test_race_on_counter_like_instance () =
  (* A deterministic mid-size instance solved by every applicable
     backend, sequentially and racing: identical winners. *)
  let spec =
    {
      Hr_workload.Multi_gen.default_spec with
      Hr_workload.Multi_gen.m = 3;
      n = 24;
      local_sizes = [| 8; 8; 24 |];
    }
  in
  let ts = Hr_workload.Multi_gen.correlated (Rng.create 3) spec in
  let problem = Problem.of_task_set ts in
  let sols =
    List.map
      (fun s -> Solver.solve ~seed:5 s problem)
      (Solver_registry.applicable problem)
  in
  check bool "at least two backends raced" true (List.length sols >= 2);
  let raced = Solver.race ~seed:5 (Solver_registry.applicable problem) problem in
  check int "race equals best sequential"
    (Solution.best sols).Solution.cost raced.Solution.cost

let test_all_task_exact_only_for_all_task_class () =
  let ts = Tutil.sample_task_set () in
  let partial = Solver_registry.solve "all-task" (Problem.of_task_set ts) in
  check bool "heuristic for partial class" false partial.Solution.exact;
  let constrained =
    Solver_registry.solve "all-task"
      (Problem.of_task_set ~machine_class:Problem.All_task ts)
  in
  check bool "exact for all-task class" true constrained.Solution.exact;
  check bool "uniform columns"
    true
    (Problem.admissible
       (Problem.of_task_set ~machine_class:Problem.All_task ts)
       constrained.Solution.bp)

let test_async_opt_matches_mt_async () =
  let oracle = Interval_cost.of_task_set (Tutil.sample_task_set ()) in
  let sol =
    Solver_registry.solve "async-opt"
      (Problem.make ~mode:Mixed_sync.Non_synchronized oracle)
  in
  let r = Mt_async.solve oracle in
  check int "cost" r.Mt_async.cost sol.Solution.cost;
  check bool "exact" true sol.Solution.exact

(* ------------------------------------------------------------------ *)
(* Brute ground truth: heuristics bounded below, exactness claims      *)
(* honoured, with and without deadlines.                               *)

let qcheck_heuristics_bounded_by_brute_under_deadlines =
  Tutil.prop
    "mt-beam/ga-polish: >= Brute.solve optimum and cost-consistent, also when cut off"
    (Tutil.gen_mt_instance ~max_m:3 ~max_n:5 ~max_width:4)
    Tutil.show_mt_instance
    (fun inst ->
      let problem = Problem.of_task_set (Tutil.task_set_of_instance inst) in
      let optimum = fst (Brute.solve problem) in
      List.for_all
        (fun name ->
          List.for_all
            (fun budget ->
              let sol = Solver_registry.solve ~seed:3 ?budget name problem in
              sol.Solution.cost >= optimum
              && sol.Solution.cost = Problem.eval problem sol.Solution.bp
              && Problem.admissible problem sol.Solution.bp)
            [ None; Some (Hr_util.Budget.of_deadline_ms 0) ])
        [ "mt-beam"; "ga-polish"; "greedy" ])

let qcheck_mode_climb_vs_brute_on_intermediate_modes =
  (* Brute.solve evaluates through Problem.eval, so it is ground truth
     for the intermediate synchronization modes too — exactly where
     mode-climb lives. *)
  Tutil.prop "mode-climb: >= brute optimum on intermediate modes"
    (Tutil.gen_mt_instance ~max_m:3 ~max_n:4 ~max_width:4)
    Tutil.show_mt_instance
    (fun inst ->
      let ts = Tutil.task_set_of_instance inst in
      List.for_all
        (fun mode ->
          let problem = Problem.of_task_set ~mode ts in
          let optimum = fst (Brute.solve problem) in
          let sol = Solver_registry.solve ~seed:3 "mode-climb" problem in
          let cut =
            Solver_registry.solve ~seed:3
              ~budget:(Hr_util.Budget.of_deadline_ms 0) "mode-climb" problem
          in
          sol.Solution.cost >= optimum
          && cut.Solution.cost >= optimum
          && cut.Solution.cut_off
          && (not cut.Solution.exact)
          && cut.Solution.cost = Problem.eval problem cut.Solution.bp)
        [ Mixed_sync.Hypercontext_synchronized; Mixed_sync.Context_synchronized ])

let test_brute_all_task_class_space () =
  (* The all-task class collapses the enumeration to one shared row:
     n=10, m=3 is 2^9, far under the old (n-1)*m = 27-bit wall.  Its
     optimum must agree with the all-task DP's exact solution. *)
  let rng = Rng.create 17 in
  let spec =
    {
      Hr_workload.Multi_gen.default_spec with
      Hr_workload.Multi_gen.m = 3;
      n = 10;
      local_sizes = [| 5; 4; 6 |];
    }
  in
  let ts = Hr_workload.Multi_gen.correlated rng spec in
  let problem = Problem.of_task_set ~machine_class:Problem.All_task ts in
  check int "bits is n-1, not (n-1)*m" 9 (Brute.bits problem);
  check bool "brute-feasible" true (Brute.feasible problem);
  let cost, bp = Brute.solve problem in
  check bool "brute plan admissible for the class" true
    (Problem.admissible problem bp);
  let dp = Solver_registry.solve "all-task" problem in
  check bool "all-task DP is exact here" true dp.Solution.exact;
  check int "brute agrees with the exact DP" dp.Solution.cost cost;
  (* The registry's brute backend now accepts the instance too. *)
  let reg = Solver_registry.solve "brute" problem in
  check bool "registry brute exact" true reg.Solution.exact;
  check int "registry brute cost" cost reg.Solution.cost

let test_async_opt_refuses_all_task_class () =
  (* Per-task solo optima cannot honour uniform columns: the capability
     predicate must filter the class out (found by hrcheck). *)
  let ts = Tutil.sample_task_set () in
  let p =
    Problem.of_task_set ~mode:Mixed_sync.Non_synchronized
      ~machine_class:Problem.All_task ts
  in
  let names = List.map (fun s -> s.Solver.name) (Solver_registry.applicable p) in
  check bool "async-opt filtered out on all-task" false
    (List.mem "async-opt" names);
  check bool "brute still applicable" true (List.mem "brute" names)

let test_mode_climb_no_worse_than_stacked_solos () =
  let oracle = Interval_cost.of_task_set (Tutil.sample_task_set ()) in
  let problem = Problem.make ~mode:Mixed_sync.Hypercontext_synchronized oracle in
  let sol = Solver_registry.solve "mode-climb" problem in
  let stacked =
    let m = Problem.m problem and n = Problem.n problem in
    Breakpoints.of_rows ~m ~n
      (Array.init m (fun j -> (St_opt.solve_oracle oracle ~task:j).St_opt.breaks))
  in
  check bool "descent never degrades its init" true
    (sol.Solution.cost <= Problem.eval problem stacked)

(* ------------------------------------------------------------------ *)
(* The execution harness: plan export, crash containment, budgets.     *)

let test_portfolio_plan_export_saves_best () =
  (* The exported plan must be the best solution, not the head of the
     registry-ordered list — the former hropt bug. *)
  let problem = sample_problem () in
  let sols =
    List.map
      (fun s -> Solver.solve ~seed:5 s problem)
      (Solver_registry.applicable problem)
  in
  let best = Solution.best sols in
  let head = List.hd sols in
  check bool "best is no worse than the registry head" true
    (best.Solution.cost <= head.Solution.cost);
  let path = Filename.temp_file "hr_plan" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Plan_io.save path best.Solution.bp;
      let loaded = Plan_io.load path in
      check int "round-tripped plan evaluates to the best cost"
        best.Solution.cost
        (Problem.eval problem loaded))

let crashing_solver =
  Solver.make ~name:"crash-test" ~kind:Solver.Heuristic
    ~doc:"deliberately crashes (test fixture)"
    ~handles:(fun _ -> true)
    (fun ~budget:_ ~rng:_ _ -> failwith "synthetic crash")

let test_race_surfaces_crash_and_still_wins () =
  let problem = sample_problem () in
  let contestants =
    [ crashing_solver; Solver_registry.find_exn "greedy";
      Solver_registry.find_exn "mt-dp" ]
  in
  let reports = Solver.run_all ~seed:5 contestants problem in
  check int "one report per contestant" (List.length contestants)
    (List.length reports);
  (let r = List.hd reports in
   check bool "crash is reported, not masked" true
     (match r.Solver.outcome with
     | Solver.Crashed (Failure msg) -> contains msg "synthetic crash"
     | _ -> false);
   check bool "crashed contestant has no solution" true
     (r.Solver.solution = None));
  let sol, _ = Solver.race_report ~seed:5 contestants problem in
  let direct = Solver_registry.solve ~seed:5 "mt-dp" problem in
  check int "race winner is the best survivor, deterministically"
    direct.Solution.cost sol.Solution.cost;
  (* All contestants crashing is an error naming the casualties. *)
  match Solver.race_report ~seed:5 [ crashing_solver ] problem with
  | exception Invalid_argument msg ->
      check bool "error names the crashed solver" true
        (contains msg "crash-test")
  | _ -> Alcotest.fail "an all-crash race must raise"

let test_map_array_applies_f_once_per_index () =
  let n = 9 in
  let counts = Array.init n (fun _ -> Atomic.make 0) in
  let out =
    Hr_util.Par.map_array ~domains:3
      (fun i ->
        Atomic.incr counts.(i);
        i * i)
      (Array.init n Fun.id)
  in
  Array.iteri
    (fun i c ->
      check int (Printf.sprintf "f applied exactly once to index %d" i) 1
        (Atomic.get c))
    counts;
  Array.iteri (fun i y -> check int "result" (i * i) y) out

let test_deadline_cutoff_returns_admissible_best_so_far () =
  let problem = sample_problem () in
  List.iter
    (fun name ->
      let budget = Hr_util.Budget.of_deadline_ms 0 in
      let sol = Solver_registry.solve ~seed:5 ~budget name problem in
      check bool (name ^ ": cut off") true sol.Solution.cut_off;
      check bool (name ^ ": never exact when cut off") false sol.Solution.exact;
      check bool (name ^ ": admissible") true
        (Problem.admissible problem sol.Solution.bp);
      check int (name ^ ": cost consistent")
        (Problem.eval problem sol.Solution.bp)
        sol.Solution.cost)
    [ "ga"; "anneal"; "hill-climb"; "mt-beam"; "mt-dp"; "ga-polish" ];
  (* An expired budget shows up as a Cut_off outcome in reports too. *)
  let r =
    Solver.solve_report ~seed:5
      ~budget:(Hr_util.Budget.of_deadline_ms 0)
      (Solver_registry.find_exn "ga") problem
  in
  check bool "report outcome is cut-off" true (r.Solver.outcome = Solver.Cut_off)

let test_telemetry_json_shape () =
  let problem = sample_problem () in
  let contestants = [ crashing_solver; Solver_registry.find_exn "greedy" ] in
  let reports = Solver.run_all ~seed:5 contestants problem in
  let t =
    Telemetry.make ~label:"test" ~deadline_ms:250 ~seed:5 ~problem
      ~total_ms:1.5 reports
  in
  check bool "winner is the survivor" true (t.Telemetry.winner = Some "greedy");
  let s = Telemetry.to_string t in
  List.iter
    (fun sub ->
      check bool (Printf.sprintf "json contains %S" sub) true (contains s sub))
    [
      Telemetry.schema_version; "\"deadline_ms\":250"; "\"outcome\":\"crashed\"";
      "\"error\":"; "\"winner\":\"greedy\""; "\"oracle_cache\":";
    ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_telemetry_golden () =
  (* A fully pinned telemetry document — deterministic solver result,
     hand-fixed wall clocks, an uncached oracle (the direct cache has
     no timing-dependent counters) — emitted and compared byte-for-byte
     against the checked-in expectation.  On a deliberate schema change,
     the failing test dumps the new document to
     [/tmp/telemetry_got.json]; review it and replace
     [test/golden/telemetry.json]. *)
  let oracle = Interval_cost.of_task_set (Tutil.sample_task_set ()) in
  let problem = Problem.make ~precompute:false oracle in
  let greedy = Solver_registry.find_exn "greedy" in
  let sol = Solver.solve ~seed:42 greedy problem in
  let reports =
    [
      {
        Solver.solver = "greedy";
        kind = greedy.Solver.kind;
        outcome = Solver.Finished;
        wall_ms = 1.25;
        solution = Some sol;
      };
      {
        Solver.solver = "crash-test";
        kind = Solver.Heuristic;
        outcome = Solver.Crashed (Failure "boom");
        wall_ms = 0.5;
        solution = None;
      };
    ]
  in
  let t =
    Telemetry.make ~label:"golden" ~deadline_ms:200 ~seed:42 ~problem
      ~total_ms:2.0 reports
  in
  let got = Telemetry.to_string t in
  let expected = read_file "golden/telemetry.json" in
  if got <> expected then begin
    let oc = open_out "/tmp/telemetry_got.json" in
    output_string oc got;
    close_out oc;
    Alcotest.failf
      "telemetry JSON deviates from golden/telemetry.json (new document \
       dumped to /tmp/telemetry_got.json)"
  end;
  (* The new parser inverts the emitter on the same document. *)
  match Telemetry.json_of_string got with
  | Error e -> Alcotest.fail ("golden document does not parse: " ^ e)
  | Ok j ->
      check bool "parser inverts the emitter" true
        (Telemetry.json_to_string j = got)

(* ------------------------------------------------------------------ *)
(* The flat-state DP engine and the parallel oracle precompute.        *)

let test_memoize_reports_resident_entries () =
  (* cache_stats.cells must be the number of entries resident in the
     sharded table, not a copy of the miss counter: 3 repeat queries on
     one key and 2 on another are 3 hits / 2 misses / 2 cells. *)
  let oracle =
    Interval_cost.memoize (Interval_cost.of_task_set (Tutil.sample_task_set ()))
  in
  let q lo hi = ignore (oracle.Interval_cost.step_cost 0 lo hi) in
  q 0 0;
  q 0 0;
  q 0 0;
  q 0 1;
  q 0 1;
  let s = Interval_cost.cache_stats oracle in
  check int "hits" 3 s.Interval_cost.hits;
  check int "misses" 2 s.Interval_cost.misses;
  check int "cells = resident entries, not misses" 2 s.Interval_cost.cells

let test_pooled_precompute_matches_sequential () =
  (* The pooled dense build must be elementwise identical to the
     sequential one on every (task, lo, hi) query. *)
  let ts =
    Hr_workload.Multi_gen.correlated (Rng.create 11)
      {
        Hr_workload.Multi_gen.default_spec with
        m = 3;
        n = 40;
        local_sizes = [| 8; 8; 8 |];
      }
  in
  let pool = Hr_util.Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Hr_util.Pool.shutdown pool)
    (fun () ->
      let pooled =
        Interval_cost.precompute ~pool (Interval_cost.of_task_set ~pool ts)
      in
      let direct = Interval_cost.of_task_set ts in
      let m = direct.Interval_cost.m and n = direct.Interval_cost.n in
      for j = 0 to m - 1 do
        for lo = 0 to n - 1 do
          for hi = lo to n - 1 do
            if
              pooled.Interval_cost.step_cost j lo hi
              <> direct.Interval_cost.step_cost j lo hi
            then
              Alcotest.failf "pooled build deviates at (%d, %d, %d)" j lo hi
          done
        done
      done;
      let s = Interval_cost.cache_stats pooled in
      check bool "dense" true (s.Interval_cost.kind = "dense");
      check int "cells" (m * n * n) s.Interval_cost.cells)

let test_budget_polled_within_dp_level () =
  (* A 35^4 ~ 1.5M-state initial expansion takes far longer than 1 ms,
     so a tiny deadline must be caught by the every-4096-emitted-states
     poll inside the level, not only at level boundaries: the run cuts
     off before any level completes (states_explored = 0) yet still
     returns an admissible, cost-consistent plan. *)
  let ts =
    Hr_workload.Multi_gen.independent (Rng.create 3)
      { Hr_workload.Multi_gen.default_spec with m = 4; n = 35 }
  in
  let oracle = Interval_cost.precompute (Interval_cost.of_task_set ts) in
  let out = Mt_dp.solve ~budget:(Hr_util.Budget.of_deadline_ms 1) oracle in
  check bool "cut off" true out.Mt_dp.cut_off;
  check bool "never exact when cut off" false out.Mt_dp.exact;
  check int "no DP level completed" 0 out.Mt_dp.states_explored;
  check int "cost consistent" (Sync_cost.eval oracle out.Mt_dp.bp)
    out.Mt_dp.cost

let test_beam_determinism_under_truncation () =
  (* Beam truncation keeps the lowest-accumulated-cost states with
     index-order tie-breaking, so two runs over the same instance are
     bit-identical even under truncation pressure. *)
  let ts =
    Hr_workload.Multi_gen.independent (Rng.create 7)
      { Hr_workload.Multi_gen.default_spec with m = 4; n = 24 }
  in
  let oracle = Interval_cost.precompute (Interval_cost.of_task_set ts) in
  let run () = Mt_dp.solve ~max_states:16 oracle in
  let a = run () and b = run () in
  check bool "truncation pressure" true (a.Mt_dp.truncations > 0);
  check int "same cost" a.Mt_dp.cost b.Mt_dp.cost;
  check bool "same plan" true (Breakpoints.equal a.Mt_dp.bp b.Mt_dp.bp);
  check int "same truncations" a.Mt_dp.truncations b.Mt_dp.truncations;
  check int "same states explored" a.Mt_dp.states_explored
    b.Mt_dp.states_explored

let test_dp_corpus_golden () =
  (* The flat-state engine pinned byte-for-byte on the conformance
     corpus: cost, exactness claim and the full per-task plan of every
     mt-dp-applicable case.  On a legitimate engine change the failing
     test dumps the new document to [/tmp/dp_plans_got.json]; review it
     and replace [test/golden/dp_plans.json]. *)
  let dp = Solver_registry.find_exn "mt-dp" in
  let docs =
    List.filter_map
      (fun (file, case) ->
        match case with
        | Error e -> Alcotest.failf "corpus case %s failed to load: %s" file e
        | Ok case ->
            let problem = Hr_check.Case.problem case in
            if not (dp.Solver.handles problem) then None
            else
              let sol = Solver_registry.solve ~seed:0 "mt-dp" problem in
              let plan =
                List.init (Problem.m problem) (fun j ->
                    Telemetry.List
                      (List.map
                         (fun i -> Telemetry.Int i)
                         (Solution.task_breaks sol j)))
              in
              Some
                (Telemetry.Obj
                   [
                     ("file", Telemetry.String (Filename.basename file));
                     ("cost", Telemetry.Int sol.Solution.cost);
                     ("exact", Telemetry.Bool sol.Solution.exact);
                     ("plan", Telemetry.List plan);
                   ]))
      (Hr_check.Corpus.load_dir "corpus")
  in
  check bool "at least one corpus case is mt-dp-applicable" true (docs <> []);
  let got = Telemetry.json_to_string (Telemetry.List docs) in
  let expected = read_file "golden/dp_plans.json" in
  if got <> expected then begin
    let oc = open_out "/tmp/dp_plans_got.json" in
    output_string oc got;
    close_out oc;
    Alcotest.failf
      "mt-dp corpus plans deviate from golden/dp_plans.json (new document \
       dumped to /tmp/dp_plans_got.json)"
  end

let tests =
  [
    Alcotest.test_case "registry names" `Quick test_registry_names;
    Alcotest.test_case "find_exn unknown" `Quick test_find_exn_unknown;
    Alcotest.test_case "duplicate registration" `Quick test_register_duplicate;
    Alcotest.test_case "capability predicates" `Quick test_capability_predicates;
    Alcotest.test_case "mode routing" `Quick test_mode_routing;
    Alcotest.test_case "Solution.best tie-breaking" `Quick
      test_solution_best_prefers_exact;
    qcheck_st_dp_matches_st_opt;
    qcheck_costs_consistent_and_bounded;
    qcheck_race_equals_best_sequential;
    qcheck_precompute_transparent;
    qcheck_beam_bounded_below_by_exact;
    Alcotest.test_case "beam never claims exact" `Quick
      test_beam_truncation_stays_inexact;
    Alcotest.test_case "race on mid-size instance" `Quick
      test_race_on_counter_like_instance;
    Alcotest.test_case "all-task exactness scoping" `Quick
      test_all_task_exact_only_for_all_task_class;
    Alcotest.test_case "async-opt == Mt_async" `Quick test_async_opt_matches_mt_async;
    qcheck_heuristics_bounded_by_brute_under_deadlines;
    qcheck_mode_climb_vs_brute_on_intermediate_modes;
    Alcotest.test_case "brute collapses the all-task class" `Quick
      test_brute_all_task_class_space;
    Alcotest.test_case "async-opt refuses the all-task class" `Quick
      test_async_opt_refuses_all_task_class;
    Alcotest.test_case "mode-climb vs stacked solos" `Quick
      test_mode_climb_no_worse_than_stacked_solos;
    Alcotest.test_case "portfolio plan export saves the best plan" `Quick
      test_portfolio_plan_export_saves_best;
    Alcotest.test_case "race contains and surfaces crashes" `Quick
      test_race_surfaces_crash_and_still_wins;
    Alcotest.test_case "Par.map_array applies f once per index" `Quick
      test_map_array_applies_f_once_per_index;
    Alcotest.test_case "deadline cut-off stays admissible" `Quick
      test_deadline_cutoff_returns_admissible_best_so_far;
    Alcotest.test_case "telemetry JSON shape" `Quick test_telemetry_json_shape;
    Alcotest.test_case "telemetry JSON golden" `Quick test_telemetry_golden;
    Alcotest.test_case "memoize stats report resident entries" `Quick
      test_memoize_reports_resident_entries;
    Alcotest.test_case "pooled precompute == sequential" `Quick
      test_pooled_precompute_matches_sequential;
    Alcotest.test_case "budget polled within a DP level" `Quick
      test_budget_polled_within_dp_level;
    Alcotest.test_case "beam determinism under truncation" `Quick
      test_beam_determinism_under_truncation;
    Alcotest.test_case "mt-dp corpus plans golden" `Quick test_dp_corpus_golden;
  ]
