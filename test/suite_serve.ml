(* lib/serve conformance: interleaved socket clients, deterministic
   load shedding, per-request deadlines, byte-parity with the stdio
   pipeline, prefetch prediction, and the latency-summary guards. *)

open Hr_core
module Check = Hr_check
module Server = Hr_serve.Server
module Protocol = Hr_serve.Protocol
module History = Hr_serve.History
module Metrics = Hr_serve.Metrics

let check = Alcotest.check

let sock_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hrserve-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_server cfg f =
  let t = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t)

(* A connected client: line-oriented send/receive over the socket. *)
type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let send c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let recv c = input_line c.ic
let half_close c = Unix.shutdown c.fd Unix.SHUTDOWN_SEND

let close c =
  try close_in c.ic (* closes the shared fd *) with Sys_error _ -> ()

let response_field name line =
  match Telemetry.json_of_string line with
  | Ok (Telemetry.Obj fields) -> List.assoc_opt name fields
  | _ -> Alcotest.failf "unparseable response line: %s" line

let response_id line =
  match response_field "id" line with
  | Some (Telemetry.String s) -> s
  | _ -> Alcotest.failf "response without id: %s" line

let corpus_cases () =
  List.map
    (fun (name, r) ->
      match r with
      | Ok c -> (name, c)
      | Error e -> Alcotest.failf "corpus %s does not load: %s" name e)
    (Check.Corpus.load_dir "corpus")

(* One case per line: [Case.to_string] ends with a newline that would
   split an envelope mid-JSON. *)
let corpus_lines () =
  List.map (fun (_, c) -> String.trim (Check.Case.to_string c)) (corpus_cases ())

let envelope ?deadline_ms ~id case_line =
  match deadline_ms with
  | None -> Printf.sprintf {|{"id":%S,"case":%s}|} id case_line
  | Some ms -> Printf.sprintf {|{"id":%S,"deadline_ms":%d,"case":%s}|} id ms case_line

(* ------------------------------------------------------------------ *)

let test_interleaved_connections () =
  (* Two clients interleave requests on one server; each connection
     gets exactly its own responses, in its own request order. *)
  let path = sock_path () in
  let lines = corpus_lines () in
  let case i = List.nth lines (i mod List.length lines) in
  with_server (Server.config ~timing:false ~prefetch:false (`Unix_path path))
    (fun t ->
      let a = connect path and b = connect path in
      send a (envelope ~id:"a-0" (case 0));
      send b (envelope ~id:"b-0" (case 1));
      send a (envelope ~id:"a-1" (case 2));
      send b (envelope ~id:"b-1" (case 3));
      half_close a;
      half_close b;
      (* Sequence the reads explicitly: list literals evaluate
         right-to-left. *)
      let a0 = recv a in
      let a1 = recv a in
      let b0 = recv b in
      let b1 = recv b in
      let ra = [ a0; a1 ] and rb = [ b0; b1 ] in
      check
        Alcotest.(list string)
        "connection a ids, in order" [ "a-0"; "a-1" ] (List.map response_id ra);
      check
        Alcotest.(list string)
        "connection b ids, in order" [ "b-0"; "b-1" ] (List.map response_id rb);
      List.iter
        (fun line ->
          match response_field "ok" line with
          | Some (Telemetry.Bool true) -> ()
          | _ -> Alcotest.failf "request failed: %s" line)
        (ra @ rb);
      close a;
      close b;
      (* Metrics are recorded before the response is written, so by now
         the live summary has seen all four requests. *)
      match Server.summary_json t with
      | Telemetry.Obj fields ->
          check Alcotest.bool "serve schema" true
            (List.assoc "schema" fields
            = Telemetry.String Server.summary_schema_version);
          check Alcotest.bool "four completed" true
            (List.assoc "completed" fields = Telemetry.Int 4);
          check Alcotest.bool "none shed" true
            (List.assoc "shed" fields = Telemetry.Int 0)
      | _ -> Alcotest.fail "summary is not an object")

let test_load_shedding () =
  (* Deterministic overload: block the dispatcher in the before_batch
     hook, fill the 1-slot admission queue, and watch the next request
     get a structured overloaded error while the admitted ones survive
     to be answered after release. *)
  let path = sock_path () in
  let gate = Atomic.make true in
  let in_batch = Atomic.make false in
  let hook () =
    Atomic.set in_batch true;
    while Atomic.get gate do
      Thread.delay 0.001
    done
  in
  let lines = corpus_lines () in
  let case i = List.nth lines (i mod List.length lines) in
  with_server
    (Server.config ~max_queue:1 ~timing:false ~prefetch:false
       ~before_batch:hook (`Unix_path path))
    (fun _t ->
      let c = connect path in
      send c (envelope ~id:"first" (case 0));
      (* Wait until the dispatcher holds "first" and the queue is empty. *)
      while not (Atomic.get in_batch) do
        Thread.delay 0.001
      done;
      send c (envelope ~id:"second" (case 1));
      (* Queue slot taken: give admission a moment, then overflow. *)
      Thread.delay 0.05;
      send c (envelope ~id:"third" (case 2));
      (* The shed response arrives while the others are still blocked. *)
      let shed_line = recv c in
      check Alcotest.string "shed request answered first" "third"
        (response_id shed_line);
      (match response_field "ok" shed_line with
      | Some (Telemetry.Bool false) -> ()
      | _ -> Alcotest.failf "shed response not an error: %s" shed_line);
      (match response_field "error" shed_line with
      | Some (Telemetry.String msg) ->
          check Alcotest.bool "error says overloaded" true
            (Astring.String.is_prefix ~affix:"overloaded" msg)
      | _ -> Alcotest.failf "shed response without error: %s" shed_line);
      Atomic.set gate false;
      half_close c;
      let r1 = recv c in
      let r2 = recv c in
      check Alcotest.string "first survives" "first" (response_id r1);
      check Alcotest.string "second survives" "second" (response_id r2);
      List.iter
        (fun line ->
          match response_field "ok" line with
          | Some (Telemetry.Bool true) -> ()
          | _ -> Alcotest.failf "admitted request failed: %s" line)
        [ r1; r2 ];
      close c)

let test_per_request_deadline () =
  (* An envelope deadline_ms tightens that request's budget only: with
     an already-expired deadline the solver is cut off (best-so-far,
     inexact), while the unconstrained twin solves exactly. *)
  let path = sock_path () in
  let mt_dp = Solver_registry.find_exn "mt-dp" in
  let case_line =
    match
      List.find_opt
        (fun (_, c) -> mt_dp.Solver.handles (Check.Case.problem c))
        (corpus_cases ())
    with
    | Some (_, c) -> String.trim (Check.Case.to_string c)
    | None -> Alcotest.fail "no corpus case handled by mt-dp"
  in
  with_server
    (Server.config ~timing:false ~prefetch:false
       ~solvers:(fun _ -> [ mt_dp ])
       (`Unix_path path))
    (fun _t ->
      let c = connect path in
      send c (envelope ~deadline_ms:0 ~id:"expired" case_line);
      send c (envelope ~id:"unbounded" case_line);
      half_close c;
      let expired = recv c in
      let unbounded = recv c in
      check Alcotest.string "expired id" "expired" (response_id expired);
      check Alcotest.bool "expired request is cut off" true
        (response_field "cut_off" expired = Some (Telemetry.Bool true));
      check Alcotest.bool "expired request is inexact" true
        (response_field "exact" expired = Some (Telemetry.Bool false));
      check Alcotest.bool "unbounded twin is not cut off" true
        (response_field "cut_off" unbounded = Some (Telemetry.Bool false));
      close c)

let test_socket_matches_stdio_bytes () =
  (* The acceptance bar: with timing off, the socket transport returns
     byte-identical response lines to the stdio pipeline (same parse,
     same batch, same rendering) over the whole corpus. *)
  let lines = corpus_lines () in
  let expected =
    let requests =
      List.mapi
        (fun k line ->
          match Protocol.parse_line ~fallback_id:(Printf.sprintf "#%d" k) line with
          | Protocol.Request r -> r
          | Protocol.Malformed { error; _ } ->
              Alcotest.failf "corpus line does not parse: %s" error)
        lines
    in
    let batch = Batch.run ~seed:Solver.default_seed requests in
    String.concat ""
      (List.map (fun r -> Protocol.response_line ~timing:false r)
         batch.Batch.responses)
  in
  let path = sock_path () in
  with_server (Server.config ~timing:false ~prefetch:false (`Unix_path path))
    (fun _t ->
      let c = connect path in
      List.iter (send c) lines;
      half_close c;
      let got =
        List.fold_left (fun acc _ -> acc ^ recv c ^ "\n") "" lines
      in
      close c;
      check Alcotest.string "socket responses = stdio responses" expected got)

let test_listen_of_string () =
  let ok s = Result.get_ok (Server.listen_of_string s) in
  check Alcotest.bool "unix:" true (ok "unix:/tmp/x.sock" = `Unix_path "/tmp/x.sock");
  check Alcotest.bool "bare path" true (ok "/tmp/x.sock" = `Unix_path "/tmp/x.sock");
  check Alcotest.bool "tcp" true (ok "tcp:127.0.0.1:8080" = `Tcp ("127.0.0.1", 8080));
  check Alcotest.bool "tcp any" true (ok "tcp:*:0" = `Tcp ("*", 0));
  List.iter
    (fun s ->
      match Server.listen_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad address %S" s)
    [ "bogus"; "tcp:host"; "tcp:host:99999"; "tcp:host:nope"; "unix:" ]

let test_history_predicts_successor () =
  let h = History.create () in
  let build () = failwith "never built" in
  List.iter
    (fun key -> History.observe h ~key build)
    [ "a"; "b"; "a"; "b"; "a" ];
  check Alcotest.int "observations counted" 5 (History.observed h);
  (* last = "a", whose dominant successor is "b". *)
  (match History.predict h ~resident:(fun _ -> false) ~limit:1 with
  | [ (key, _) ] -> check Alcotest.string "successor of last wins" "b" key
  | l -> Alcotest.failf "%d candidates for limit 1" (List.length l));
  (* Resident keys are never proposed; ranking falls back to global
     frequency. *)
  let keys =
    List.map fst (History.predict h ~resident:(fun k -> k = "b") ~limit:2)
  in
  check Alcotest.bool "resident key filtered" false (List.mem "b" keys)

let test_latency_summary_guards () =
  (* Percentiles must be null, not a crash, when no request has
     completed (Stats.percentile raises on empty samples). *)
  (match Telemetry.latency_summary [||] with
  | Telemetry.Obj fields ->
      check Alcotest.bool "count 0" true
        (List.assoc "count" fields = Telemetry.Int 0);
      List.iter
        (fun k ->
          check Alcotest.bool (k ^ " null") true
            (List.assoc k fields = Telemetry.Null))
        [ "mean_ms"; "p50_ms"; "p95_ms"; "p99_ms"; "max_ms" ]
  | _ -> Alcotest.fail "latency summary is not an object");
  (* And an idle server's metrics render the same way. *)
  match Metrics.snapshot_to_json (Metrics.snapshot (Metrics.create ())) with
  | Telemetry.Obj fields -> (
      match List.assoc "latency" fields with
      | Telemetry.Obj l ->
          check Alcotest.bool "idle p95 null" true
            (List.assoc "p95_ms" l = Telemetry.Null)
      | _ -> Alcotest.fail "metrics latency is not an object")
  | _ -> Alcotest.fail "metrics snapshot is not an object"

let tests =
  [
    Alcotest.test_case "interleaved connections" `Quick
      test_interleaved_connections;
    Alcotest.test_case "load shedding under tiny queue" `Quick
      test_load_shedding;
    Alcotest.test_case "per-request deadline honoured" `Quick
      test_per_request_deadline;
    Alcotest.test_case "socket = stdio, byte for byte" `Quick
      test_socket_matches_stdio_bytes;
    Alcotest.test_case "listen address parsing" `Quick test_listen_of_string;
    Alcotest.test_case "history predicts successor" `Quick
      test_history_predicts_successor;
    Alcotest.test_case "latency summary on empty samples" `Quick
      test_latency_summary_guards;
  ]
