(* Batch.run conformance: differential against direct solves on the
   checked-in corpus, error containment, build dedup, and the
   hyperreconf.result/1 / hyperreconf.batch/1 golden documents. *)

open Hr_core
module Check = Hr_check
module Pool = Hr_util.Pool

let check = Alcotest.check

let corpus_cases () =
  List.map
    (fun (name, r) ->
      match r with
      | Ok c -> (name, c)
      | Error e -> Alcotest.failf "corpus %s does not load: %s" name e)
    (Check.Corpus.load_dir "corpus")

let test_corpus_matches_single () =
  (* Every corpus case × every applicable solver: routing the solve
     through Batch.run changes nothing — same cost, exactness flag and
     breakpoint matrix as the direct Solver.solve. *)
  List.iter
    (fun (name, case) ->
      let problem = Check.Case.problem case in
      List.iter
        (fun solver ->
          let tag = name ^ "/" ^ solver.Solver.name in
          let direct = Solver.solve ~seed:11 solver problem in
          let batch =
            Batch.run ~seed:11
              ~solvers:(fun _ -> [ solver ])
              [ Batch.request ~id:tag (fun () -> Check.Case.problem case) ]
          in
          match batch.Batch.responses with
          | [ { Batch.outcome = Ok solved; id; _ } ] ->
              let b = solved.Batch.solution in
              check Alcotest.string (tag ^ " id echoed") tag id;
              check Alcotest.int (tag ^ " cost") direct.Solution.cost
                b.Solution.cost;
              check Alcotest.bool (tag ^ " exact") direct.Solution.exact
                b.Solution.exact;
              check Alcotest.bool (tag ^ " plan") true
                (Breakpoints.equal direct.Solution.bp b.Solution.bp)
          | [ { Batch.outcome = Error e; _ } ] ->
              Alcotest.failf "%s: batched solve errored: %s" tag e
          | rs -> Alcotest.failf "%s: %d responses for 1 request" tag (List.length rs))
        (Solver_registry.applicable problem))
    (corpus_cases ())

let test_corpus_race_bit_identical () =
  (* The pooled default race, unlimited budget, equals the sequential
     single-domain race bit for bit: same winner, cost, plan, and the
     same per-contestant report roster. *)
  List.iter
    (fun (name, case) ->
      let problem = Check.Case.problem case in
      let seq_sol, seq_reports =
        Solver.race_report ~domains:1 ~seed:11
          (Solver_registry.applicable problem)
          problem
      in
      let batch =
        Batch.run ~seed:11
          [ Batch.request ~id:name (fun () -> Check.Case.problem case) ]
      in
      match batch.Batch.responses with
      | [ { Batch.outcome = Ok solved; _ } ] ->
          let b = solved.Batch.solution in
          check Alcotest.string (name ^ " winner") seq_sol.Solution.solver
            b.Solution.solver;
          check Alcotest.int (name ^ " cost") seq_sol.Solution.cost
            b.Solution.cost;
          check Alcotest.bool (name ^ " exact") seq_sol.Solution.exact
            b.Solution.exact;
          check Alcotest.bool (name ^ " plan") true
            (Breakpoints.equal seq_sol.Solution.bp b.Solution.bp);
          check
            Alcotest.(list (pair string string))
            (name ^ " report roster")
            (List.map
               (fun (r : Solver.report) ->
                 (r.Solver.solver, Solver.outcome_name r.Solver.outcome))
               seq_reports)
            (List.map
               (fun (r : Solver.report) ->
                 (r.Solver.solver, Solver.outcome_name r.Solver.outcome))
               solved.Batch.reports)
      | _ -> Alcotest.failf "%s: unexpected batch shape" name)
    (corpus_cases ())

let sample_build () =
  Problem.make (Interval_cost.of_task_set (Tutil.sample_task_set ()))

let test_error_containment () =
  (* A failing build is one structured Error response; its neighbours
     solve normally and order is preserved. *)
  let batch =
    Batch.run ~seed:3
      [
        Batch.request ~id:"ok-0" sample_build;
        Batch.request ~id:"boom" (fun () -> failwith "no such oracle");
        Batch.request ~id:"ok-2" sample_build;
      ]
  in
  match batch.Batch.responses with
  | [ a; b; c ] ->
      check Alcotest.(list string) "request order" [ "ok-0"; "boom"; "ok-2" ]
        (List.map (fun r -> r.Batch.id) [ a; b; c ]);
      check Alcotest.bool "first ok" true (Result.is_ok a.Batch.outcome);
      check Alcotest.bool "third ok" true (Result.is_ok c.Batch.outcome);
      (match b.Batch.outcome with
      | Error msg ->
          check Alcotest.bool "error names the failure" true
            (Astring.String.is_infix ~affix:"no such oracle" msg)
      | Ok _ -> Alcotest.fail "failing build must yield an Error response")
  | rs -> Alcotest.failf "%d responses for 3 requests" (List.length rs)

let test_build_dedup () =
  (* Equal keys share one problem build; a distinct key does not. *)
  let req i key = Batch.request ~key ~id:(string_of_int i) sample_build in
  let batch =
    Batch.run ~seed:3 [ req 0 "k"; req 1 "k"; req 2 "k"; req 3 "other" ]
  in
  check Alcotest.int "two cache hits" 2 batch.Batch.shared_builds;
  List.iter
    (fun r -> check Alcotest.bool "all ok" true (Result.is_ok r.Batch.outcome))
    batch.Batch.responses

let test_build_cache_across_batches () =
  (* An explicit build_cache outlives one run (the hrserve pattern): the
     second batch reuses the first batch's problems, and shared_builds
     stays a per-run delta rather than a lifetime total. *)
  let cache = Batch.build_cache () in
  let req i key = Batch.request ~key ~id:(string_of_int i) sample_build in
  let first = Batch.run ~seed:3 ~cache [ req 0 "k"; req 1 "k" ] in
  check Alcotest.int "first run: one hit" 1 first.Batch.shared_builds;
  check Alcotest.int "one problem resident" 1 (Batch.build_cache_size cache);
  let second = Batch.run ~seed:3 ~cache [ req 2 "k"; req 3 "k2" ] in
  check Alcotest.int "second run: hit is per-run" 1 second.Batch.shared_builds;
  check Alcotest.int "two problems resident" 2 (Batch.build_cache_size cache);
  check Alcotest.int "lifetime hits accumulate" 2
    (Batch.build_cache_shared cache);
  (* Reuse must not change answers: same key, same cost as a fresh solve. *)
  let fresh = Batch.run ~seed:3 [ req 4 "k" ] in
  let cost b =
    match (List.hd b.Batch.responses).Batch.outcome with
    | Ok s -> s.Batch.solution.Solution.cost
    | Error e -> Alcotest.failf "batched solve errored: %s" e
  in
  check Alcotest.int "cached problem solves identically" (cost fresh)
    (cost second)

(* ------------------------------------------------------------------ *)
(* Goldens: fully pinned result/batch documents, byte-for-byte.        *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Deterministic solver result + hand-fixed wall clocks, like the
   telemetry golden: only schema changes can move these bytes. *)
let pinned_batch () =
  let oracle = Interval_cost.of_task_set (Tutil.sample_task_set ()) in
  let problem = Problem.make ~precompute:false oracle in
  let greedy = Solver_registry.find_exn "greedy" in
  let sol = Solver.solve ~seed:42 greedy problem in
  let reports =
    [
      {
        Solver.solver = "greedy";
        kind = greedy.Solver.kind;
        outcome = Solver.Finished;
        wall_ms = 1.25;
        solution = Some sol;
      };
      {
        Solver.solver = "crash-test";
        kind = Solver.Heuristic;
        outcome = Solver.Crashed (Failure "boom");
        wall_ms = 0.5;
        solution = None;
      };
    ]
  in
  let solved =
    { Batch.solution = sol; reports; m = Problem.m problem; n = Problem.n problem }
  in
  {
    Batch.responses =
      [
        { Batch.id = "req-0"; outcome = Ok solved; wall_ms = 1.75 };
        Batch.error_response ~wall_ms:0.25 ~id:"req-1"
          "bad request: trailing garbage";
      ];
    total_ms = 2.0;
    workers = 2;
    deadline_ms = Some 200;
    shared_builds = 1;
  }

let check_golden ~golden ~dump got =
  let expected = try read_file golden with Sys_error _ -> "<missing golden>" in
  if got <> expected then begin
    let oc = open_out dump in
    output_string oc got;
    close_out oc;
    Alcotest.failf "document deviates from %s (new document dumped to %s)"
      golden dump
  end;
  (* The telemetry parser inverts the emitter on the same document. *)
  match Telemetry.json_of_string got with
  | Error e -> Alcotest.fail ("golden document does not parse: " ^ e)
  | Ok j ->
      check Alcotest.bool "parser inverts the emitter" true
        (Telemetry.json_to_string j = got)

let test_result_golden () =
  let batch = pinned_batch () in
  let r = List.hd batch.Batch.responses in
  check_golden ~golden:"golden/result.json" ~dump:"/tmp/result_got.json"
    (Telemetry.json_to_string (Batch.response_to_json r))

let test_batch_golden () =
  check_golden ~golden:"golden/batch.json" ~dump:"/tmp/batch_got.json"
    (Telemetry.json_to_string (Batch.to_json ~label:"golden" (pinned_batch ())))

let tests =
  [
    Alcotest.test_case "corpus: batch = single solve" `Quick
      test_corpus_matches_single;
    Alcotest.test_case "corpus: batch race = sequential race" `Quick
      test_corpus_race_bit_identical;
    Alcotest.test_case "error containment" `Quick test_error_containment;
    Alcotest.test_case "build dedup by key" `Quick test_build_dedup;
    Alcotest.test_case "build cache across batches" `Quick
      test_build_cache_across_batches;
    Alcotest.test_case "result/1 golden" `Quick test_result_golden;
    Alcotest.test_case "batch/1 golden" `Quick test_batch_golden;
  ]
