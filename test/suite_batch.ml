(* Batch.run conformance: differential against direct solves on the
   checked-in corpus, error containment, build dedup, and the
   hyperreconf.result/1 / hyperreconf.batch/1 golden documents. *)

open Hr_core
module Check = Hr_check
module Pool = Hr_util.Pool

let check = Alcotest.check

let corpus_cases () =
  List.map
    (fun (name, r) ->
      match r with
      | Ok c -> (name, c)
      | Error e -> Alcotest.failf "corpus %s does not load: %s" name e)
    (Check.Corpus.load_dir "corpus")

let test_corpus_matches_single () =
  (* Every corpus case × every applicable solver: routing the solve
     through Batch.run changes nothing — same cost, exactness flag and
     breakpoint matrix as the direct Solver.solve. *)
  List.iter
    (fun (name, case) ->
      let problem = Check.Case.problem case in
      List.iter
        (fun solver ->
          let tag = name ^ "/" ^ solver.Solver.name in
          let direct = Solver.solve ~seed:11 solver problem in
          let batch =
            Batch.run ~seed:11
              ~solvers:(fun _ -> [ solver ])
              [ Batch.request ~id:tag (fun () -> Check.Case.problem case) ]
          in
          match batch.Batch.responses with
          | [ { Batch.outcome = Ok solved; id; _ } ] ->
              let b = solved.Batch.solution in
              check Alcotest.string (tag ^ " id echoed") tag id;
              check Alcotest.int (tag ^ " cost") direct.Solution.cost
                b.Solution.cost;
              check Alcotest.bool (tag ^ " exact") direct.Solution.exact
                b.Solution.exact;
              check Alcotest.bool (tag ^ " plan") true
                (Breakpoints.equal direct.Solution.bp b.Solution.bp)
          | [ { Batch.outcome = Error e; _ } ] ->
              Alcotest.failf "%s: batched solve errored: %s" tag e
          | rs -> Alcotest.failf "%s: %d responses for 1 request" tag (List.length rs))
        (Solver_registry.applicable problem))
    (corpus_cases ())

let test_corpus_race_bit_identical () =
  (* The pooled default race, unlimited budget, equals the sequential
     single-domain race bit for bit: same winner, cost, plan, and the
     same per-contestant report roster. *)
  List.iter
    (fun (name, case) ->
      let problem = Check.Case.problem case in
      let seq_sol, seq_reports =
        Solver.race_report ~domains:1 ~seed:11
          (Solver_registry.applicable problem)
          problem
      in
      let batch =
        Batch.run ~seed:11
          [ Batch.request ~id:name (fun () -> Check.Case.problem case) ]
      in
      match batch.Batch.responses with
      | [ { Batch.outcome = Ok solved; _ } ] ->
          let b = solved.Batch.solution in
          check Alcotest.string (name ^ " winner") seq_sol.Solution.solver
            b.Solution.solver;
          check Alcotest.int (name ^ " cost") seq_sol.Solution.cost
            b.Solution.cost;
          check Alcotest.bool (name ^ " exact") seq_sol.Solution.exact
            b.Solution.exact;
          check Alcotest.bool (name ^ " plan") true
            (Breakpoints.equal seq_sol.Solution.bp b.Solution.bp);
          check
            Alcotest.(list (pair string string))
            (name ^ " report roster")
            (List.map
               (fun (r : Solver.report) ->
                 (r.Solver.solver, Solver.outcome_name r.Solver.outcome))
               seq_reports)
            (List.map
               (fun (r : Solver.report) ->
                 (r.Solver.solver, Solver.outcome_name r.Solver.outcome))
               solved.Batch.reports)
      | _ -> Alcotest.failf "%s: unexpected batch shape" name)
    (corpus_cases ())

let sample_build () =
  Problem.make (Interval_cost.of_task_set (Tutil.sample_task_set ()))

let test_error_containment () =
  (* A failing build is one structured Error response; its neighbours
     solve normally and order is preserved. *)
  let batch =
    Batch.run ~seed:3
      [
        Batch.request ~id:"ok-0" sample_build;
        Batch.request ~id:"boom" (fun () -> failwith "no such oracle");
        Batch.request ~id:"ok-2" sample_build;
      ]
  in
  match batch.Batch.responses with
  | [ a; b; c ] ->
      check Alcotest.(list string) "request order" [ "ok-0"; "boom"; "ok-2" ]
        (List.map (fun r -> r.Batch.id) [ a; b; c ]);
      check Alcotest.bool "first ok" true (Result.is_ok a.Batch.outcome);
      check Alcotest.bool "third ok" true (Result.is_ok c.Batch.outcome);
      (match b.Batch.outcome with
      | Error msg ->
          check Alcotest.bool "error names the failure" true
            (Astring.String.is_infix ~affix:"no such oracle" msg)
      | Ok _ -> Alcotest.fail "failing build must yield an Error response")
  | rs -> Alcotest.failf "%d responses for 3 requests" (List.length rs)

let test_build_dedup () =
  (* Equal keys share one problem build; a distinct key does not. *)
  let req i key = Batch.request ~key ~id:(string_of_int i) sample_build in
  let batch =
    Batch.run ~seed:3 [ req 0 "k"; req 1 "k"; req 2 "k"; req 3 "other" ]
  in
  check Alcotest.int "two cache hits" 2 batch.Batch.shared_builds;
  List.iter
    (fun r -> check Alcotest.bool "all ok" true (Result.is_ok r.Batch.outcome))
    batch.Batch.responses

let test_build_cache_across_batches () =
  (* An explicit build_cache outlives one run (the hrserve pattern): the
     second batch reuses the first batch's problems, and shared_builds
     stays a per-run delta rather than a lifetime total. *)
  let cache = Batch.build_cache () in
  let req i key = Batch.request ~key ~id:(string_of_int i) sample_build in
  let first = Batch.run ~seed:3 ~cache [ req 0 "k"; req 1 "k" ] in
  check Alcotest.int "first run: one hit" 1 first.Batch.shared_builds;
  check Alcotest.int "one problem resident" 1 (Batch.build_cache_size cache);
  let second = Batch.run ~seed:3 ~cache [ req 2 "k"; req 3 "k2" ] in
  check Alcotest.int "second run: hit is per-run" 1 second.Batch.shared_builds;
  check Alcotest.int "two problems resident" 2 (Batch.build_cache_size cache);
  check Alcotest.int "lifetime hits accumulate" 2
    (Batch.build_cache_shared cache);
  (* Reuse must not change answers: same key, same cost as a fresh solve. *)
  let fresh = Batch.run ~seed:3 [ req 4 "k" ] in
  let cost b =
    match (List.hd b.Batch.responses).Batch.outcome with
    | Ok s -> s.Batch.solution.Solution.cost
    | Error e -> Alcotest.failf "batched solve errored: %s" e
  in
  check Alcotest.int "cached problem solves identically" (cost fresh)
    (cost second)

let test_lru_eviction_by_bytes () =
  (* Every sample problem costs at least the 1 KiB accounting floor, so
     a 1.5 KiB budget holds exactly one problem: inserting a second
     evicts the least recently used. *)
  let cache = Batch.build_cache ~max_bytes:1500 () in
  let req i key = Batch.request ~key ~id:(string_of_int i) sample_build in
  ignore (Batch.run ~seed:3 ~cache [ req 0 "a" ]);
  check Alcotest.bool "a resident" true (Batch.build_cache_mem cache "a");
  ignore (Batch.run ~seed:3 ~cache [ req 1 "b" ]);
  check Alcotest.bool "b resident" true (Batch.build_cache_mem cache "b");
  check Alcotest.bool "a evicted" false (Batch.build_cache_mem cache "a");
  let s = Batch.build_cache_stats cache in
  check Alcotest.int "one eviction" 1 s.Batch.evictions;
  check Alcotest.int "one entry resident" 1 s.Batch.entries;
  check Alcotest.int "two misses" 2 s.Batch.misses

let test_lru_recency_order () =
  (* A hit refreshes recency: after touching "a", inserting "c" into a
     two-slot cache evicts "b", not "a". *)
  let cache = Batch.build_cache ~max_bytes:2500 () in
  let req i key = Batch.request ~key ~id:(string_of_int i) sample_build in
  ignore (Batch.run ~seed:3 ~cache [ req 0 "a" ]);
  ignore (Batch.run ~seed:3 ~cache [ req 1 "b" ]);
  ignore (Batch.run ~seed:3 ~cache [ req 2 "a" ] (* hit: a becomes MRU *));
  ignore (Batch.run ~seed:3 ~cache [ req 3 "c" ]);
  check Alcotest.bool "a kept (recently used)" true
    (Batch.build_cache_mem cache "a");
  check Alcotest.bool "b evicted (least recently used)" false
    (Batch.build_cache_mem cache "b");
  check Alcotest.bool "c resident" true (Batch.build_cache_mem cache "c");
  let s = Batch.build_cache_stats cache in
  check Alcotest.int "one hit" 1 s.Batch.hits;
  check Alcotest.int "three misses" 3 s.Batch.misses;
  (* The rendered stats expose the hit rate once there is traffic. *)
  check Alcotest.bool "hit rate rendered" true
    (Astring.String.is_infix ~affix:"\"hit_rate\":0.25"
       (Telemetry.json_to_string (Batch.build_cache_stats_to_json s)))

let test_fair_slice_clamps () =
  let slice = Alcotest.float 1e-9 in
  (* Exhausted global budget: the slice is zero, not a 1 ms floor that
     would overrun the deadline request by request. *)
  check slice "exhausted budget" 0.
    (Batch.fair_slice_ms ~remaining_ms:0. ~workers:4 ~left:2);
  check slice "overrun budget" 0.
    (Batch.fair_slice_ms ~remaining_ms:(-5.) ~workers:4 ~left:2);
  (* The fair share: workers/left of what remains... *)
  check slice "fair share" 50.
    (Batch.fair_slice_ms ~remaining_ms:100. ~workers:2 ~left:4);
  (* ...clamped to the remaining budget when workers outnumber the
     queue... *)
  check slice "clamped to remaining" 100.
    (Batch.fair_slice_ms ~remaining_ms:100. ~workers:8 ~left:2);
  (* ...and safe on a drained queue. *)
  check slice "empty queue" 100.
    (Batch.fair_slice_ms ~remaining_ms:100. ~workers:4 ~left:0)

let test_expired_deadline_cuts_off () =
  (* Regression for the deadline overrun: with the global budget
     already spent, every remaining request must come back cut off
     (best-so-far), not claim a fresh floor slice each. *)
  let mt_dp = Solver_registry.find_exn "mt-dp" in
  let reqs =
    List.init 3 (fun i -> Batch.request ~id:(string_of_int i) sample_build)
  in
  let batch = Batch.run ~seed:3 ~deadline_ms:0 ~solvers:(fun _ -> [ mt_dp ]) reqs in
  check Alcotest.int "all answered" 3 (List.length batch.Batch.responses);
  List.iter
    (fun (r : Batch.response) ->
      match r.Batch.outcome with
      | Ok s ->
          check Alcotest.bool (r.Batch.id ^ " cut off") true
            s.Batch.solution.Solution.cut_off
      | Error e -> Alcotest.failf "%s errored: %s" r.Batch.id e)
    batch.Batch.responses

let test_per_request_budget_layered () =
  (* A request-level budget tightens only its own request, even with an
     unlimited global budget. *)
  let mt_dp = Solver_registry.find_exn "mt-dp" in
  let expired =
    Batch.request ~budget:(Hr_util.Budget.of_deadline_ms 0) ~id:"expired"
      sample_build
  in
  let unbounded = Batch.request ~id:"unbounded" sample_build in
  let batch =
    Batch.run ~seed:3 ~solvers:(fun _ -> [ mt_dp ]) [ expired; unbounded ]
  in
  match batch.Batch.responses with
  | [ e; u ] ->
      let cut (r : Batch.response) =
        match r.Batch.outcome with
        | Ok s -> s.Batch.solution.Solution.cut_off
        | Error msg -> Alcotest.failf "%s errored: %s" r.Batch.id msg
      in
      check Alcotest.bool "expired request cut off" true (cut e);
      check Alcotest.bool "unbounded neighbour unaffected" false (cut u)
  | rs -> Alcotest.failf "%d responses for 2 requests" (List.length rs)

let test_empty_run_short_circuits () =
  (* An all-malformed (hence empty) batch must not touch any pool. *)
  let b = Batch.run ~seed:1 [] in
  check Alcotest.int "no responses" 0 (List.length b.Batch.responses);
  check Alcotest.int "no pool consulted" 0 b.Batch.workers;
  check (Alcotest.float 1e-9) "no time accounted" 0. b.Batch.total_ms

let test_timing_off_zeroes_wall_ms () =
  let r = Batch.error_response ~wall_ms:1.25 ~id:"x" "boom" in
  let timed = Telemetry.json_to_string (Batch.response_to_json r) in
  let zeroed =
    Telemetry.json_to_string (Batch.response_to_json ~timing:false r)
  in
  check Alcotest.bool "timed render keeps wall_ms" true
    (Astring.String.is_infix ~affix:"\"wall_ms\":1.250" timed);
  check Alcotest.bool "timing:false zeroes wall_ms" true
    (Astring.String.is_infix ~affix:"\"wall_ms\":0.000" zeroed);
  check Alcotest.bool "nothing else changes" true
    (String.length timed = String.length zeroed)

(* ------------------------------------------------------------------ *)
(* Goldens: fully pinned result/batch documents, byte-for-byte.        *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Deterministic solver result + hand-fixed wall clocks, like the
   telemetry golden: only schema changes can move these bytes. *)
let pinned_batch () =
  let oracle = Interval_cost.of_task_set (Tutil.sample_task_set ()) in
  let problem = Problem.make ~precompute:false oracle in
  let greedy = Solver_registry.find_exn "greedy" in
  let sol = Solver.solve ~seed:42 greedy problem in
  let reports =
    [
      {
        Solver.solver = "greedy";
        kind = greedy.Solver.kind;
        outcome = Solver.Finished;
        wall_ms = 1.25;
        solution = Some sol;
      };
      {
        Solver.solver = "crash-test";
        kind = Solver.Heuristic;
        outcome = Solver.Crashed (Failure "boom");
        wall_ms = 0.5;
        solution = None;
      };
    ]
  in
  let solved =
    { Batch.solution = sol; reports; m = Problem.m problem; n = Problem.n problem }
  in
  {
    Batch.responses =
      [
        { Batch.id = "req-0"; outcome = Ok solved; wall_ms = 1.75 };
        Batch.error_response ~wall_ms:0.25 ~id:"req-1"
          "bad request: trailing garbage";
      ];
    total_ms = 2.0;
    workers = 2;
    deadline_ms = Some 200;
    shared_builds = 1;
  }

let check_golden ~golden ~dump got =
  let expected = try read_file golden with Sys_error _ -> "<missing golden>" in
  if got <> expected then begin
    let oc = open_out dump in
    output_string oc got;
    close_out oc;
    Alcotest.failf "document deviates from %s (new document dumped to %s)"
      golden dump
  end;
  (* The telemetry parser inverts the emitter on the same document. *)
  match Telemetry.json_of_string got with
  | Error e -> Alcotest.fail ("golden document does not parse: " ^ e)
  | Ok j ->
      check Alcotest.bool "parser inverts the emitter" true
        (Telemetry.json_to_string j = got)

let test_result_golden () =
  let batch = pinned_batch () in
  let r = List.hd batch.Batch.responses in
  check_golden ~golden:"golden/result.json" ~dump:"/tmp/result_got.json"
    (Telemetry.json_to_string (Batch.response_to_json r))

let test_batch_golden () =
  check_golden ~golden:"golden/batch.json" ~dump:"/tmp/batch_got.json"
    (Telemetry.json_to_string (Batch.to_json ~label:"golden" (pinned_batch ())))

let tests =
  [
    Alcotest.test_case "corpus: batch = single solve" `Quick
      test_corpus_matches_single;
    Alcotest.test_case "corpus: batch race = sequential race" `Quick
      test_corpus_race_bit_identical;
    Alcotest.test_case "error containment" `Quick test_error_containment;
    Alcotest.test_case "build dedup by key" `Quick test_build_dedup;
    Alcotest.test_case "build cache across batches" `Quick
      test_build_cache_across_batches;
    Alcotest.test_case "lru eviction by byte budget" `Quick
      test_lru_eviction_by_bytes;
    Alcotest.test_case "lru recency order" `Quick test_lru_recency_order;
    Alcotest.test_case "fair slice clamps to budget" `Quick
      test_fair_slice_clamps;
    Alcotest.test_case "expired deadline cuts off" `Quick
      test_expired_deadline_cuts_off;
    Alcotest.test_case "per-request budget layered" `Quick
      test_per_request_budget_layered;
    Alcotest.test_case "empty run short-circuits" `Quick
      test_empty_run_short_circuits;
    Alcotest.test_case "timing off zeroes wall_ms" `Quick
      test_timing_off_zeroes_wall_ms;
    Alcotest.test_case "result/1 golden" `Quick test_result_golden;
    Alcotest.test_case "batch/1 golden" `Quick test_batch_golden;
  ]
