(* Racing registered solvers on parallel domains.

   One Problem.make call precomputes the dense oracle tables once; the
   racing solvers then share them lock-free across OCaml 5 domains.
   Each solver derives its RNG from the seed and its own name, so the
   race returns exactly what the best sequential run would — it only
   changes how long you wait for it.

   Run with: dune exec examples/solver_race.exe *)

open Hr_core
module Shyra = Hr_shyra

let () =
  let run = Shyra.Counter.build ~init:0 ~bound:10 () in
  let trace = Shyra.Tracer.trace run.Shyra.Counter.program in
  let problem = Problem.make (Shyra.Tasks.oracle trace Shyra.Tasks.four_tasks) in
  Format.printf "instance: %a@." Problem.pp problem;

  let contestants = Solver_registry.applicable problem in
  Printf.printf "racing %d solvers on up to %d domains: %s\n"
    (List.length contestants)
    (Hr_util.Par.num_domains ())
    (String.concat ", " (List.map (fun s -> s.Solver.name) contestants));

  let winner = Solver_registry.race ~seed:2004 problem in
  Format.printf "winner: %a@." Solution.pp winner;
  List.iter
    (fun (k, v) -> Printf.printf "  %s = %s\n" k v)
    winner.Solution.stats;

  (* The same result, sequentially — the race is a wall-clock device,
     not a different optimizer. *)
  let sequential =
    Solution.best
      (List.map (fun s -> Solver.solve ~seed:2004 s problem) contestants)
  in
  Printf.printf "sequential best: %s at cost %d — race %s\n"
    sequential.Solution.solver sequential.Solution.cost
    (if sequential.Solution.cost = winner.Solution.cost then "agrees"
     else "DISAGREES")
