(* The paper's §6 experiment end-to-end: run the 4-bit counter with
   variable upper bound on the simulated SHyRA architecture, extract the
   reconfiguration trace, and compare the (hyper)reconfiguration costs
   of three machines under the fully synchronized MT-Switch model:

   - hyperreconfiguration disabled (all 48 switches always available),
   - single task (one 48-switch task, optimal plan via the DP of [9]),
   - four tasks LUT1/LUT2/DeMUX/MUX (partial hyperreconfiguration,
     plan found by a genetic algorithm, as in the paper).

   Run with: dune exec examples/counter_on_shyra.exe *)

open Hr_core
module Shyra = Hr_shyra

let () =
  (* 1. Run the application on the simulator: count 0000 -> 1010. *)
  let run = Shyra.Counter.build ~init:0 ~bound:10 () in
  let trace = Shyra.Tracer.trace run.Shyra.Counter.program in
  let n = Trace.length trace in
  Printf.printf "counter performed %d increments in %d reconfiguration steps\n"
    run.Shyra.Counter.iterations n;

  (* 2. Baseline: hyperreconfiguration disabled. *)
  let disabled = Sync_cost.disabled_cost ~n ~machine_width:Shyra.Config.width () in
  Printf.printf "disabled hyperreconfiguration: cost %d\n" disabled;

  (* 3. Single-task machine: optimal plan via the registered exact DP. *)
  let single =
    Solver_registry.solve "st-dp"
      (Problem.make (Shyra.Tasks.oracle trace Shyra.Tasks.single_task))
  in
  Printf.printf "single task (optimal DP):      cost %d (%.1f%%), %d hyperreconfigurations\n"
    single.Solution.cost
    (100. *. float_of_int single.Solution.cost /. float_of_int disabled)
    (List.length (Solution.task_breaks single 0));

  (* 4. Multi-task machine: the paper's genetic algorithm, resolved from
     the registry by name. *)
  let problem = Problem.make (Shyra.Tasks.oracle trace Shyra.Tasks.four_tasks) in
  let ga = Solver_registry.solve ~seed:2004 "ga" problem in
  Printf.printf "four tasks (genetic algorithm): cost %d (%.1f%%), %d partial hyperreconfiguration steps\n"
    ga.Solution.cost
    (100. *. float_of_int ga.Solution.cost /. float_of_int disabled)
    (Solution.num_break_steps ga);

  (* 5. Show which tasks hyperreconfigure when (the paper's Fig. 3). *)
  let ts = Shyra.Tasks.split trace Shyra.Tasks.four_tasks in
  print_newline ();
  print_string (Hr_viz.Figures.fig3 ts ga.Solution.bp)
