(* Quickstart: plan hyperreconfigurations for a hand-written trace.

   A computation over 8 switches runs in two phases: it first routes
   through switches 0-2, then through 5-7.  We ask the optimal
   single-task planner where to hyperreconfigure and what each
   hypercontext should be, and compare against never hyperreconfiguring.

   Run with: dune exec examples/quickstart.exe *)

open Hr_core

let () =
  let space = Switch_space.make 8 in
  let trace =
    Trace.of_lists space
      [
        (* phase 1: small routing demand *)
        [ 0 ]; [ 1 ]; [ 0; 2 ]; [ 1; 2 ]; [ 0 ];
        (* phase 2: a different corner of the fabric *)
        [ 5 ]; [ 6; 7 ]; [ 5; 7 ]; [ 6 ]; [ 7 ];
      ]
  in
  (* v is the hyperreconfiguration cost; the switch-model default is the
     universe size (all switch states must be (un)loaded).  The problem
     descriptor is handed to a solver picked from the registry by name —
     "st-dp" is the exact single-task DP. *)
  let problem = Problem.of_trace ~v:4 trace in
  let sol = Solver_registry.solve "st-dp" problem in
  Printf.printf "optimal cost: %d (certified exact: %b)\n" sol.Solution.cost
    sol.Solution.exact;
  let breaks = Solution.task_breaks sol 0 in
  Printf.printf "hyperreconfigure at steps: %s\n"
    (String.concat ", " (List.map string_of_int breaks));
  List.iteri
    (fun k hc ->
      Format.printf "block %d hypercontext: %a (reconfiguration costs %d per step)@."
        k (Switch_space.pp_set space) hc (Hypercontext.cost hc))
    (St_opt.plan_of_breaks trace breaks);
  (* Baseline: keep every switch available the whole time. *)
  let never = 4 + (Switch_space.size space * Trace.length trace) in
  Printf.printf "never hyperreconfiguring would cost: %d\n" never;
  Printf.printf "saving: %.1f%%\n"
    (100. *. (1. -. (float_of_int sol.Solution.cost /. float_of_int never)))
