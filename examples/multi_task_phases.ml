(* Multi-task planning on a synthetic phased workload.

   Four tasks (with the SHyRA-like 8/8/8/24 local switch split) run
   phase-structured computations.  Every solver the registry deems
   applicable is run on the correlated workload (shared phase
   boundaries — the friendly case for partial hyperreconfiguration)
   and on the independent one.

   Run with: dune exec examples/multi_task_phases.exe *)

open Hr_core
module Rng = Hr_util.Rng
module W = Hr_workload

let optimize name oracle =
  let problem = Problem.make oracle in
  let rows =
    List.map
      (fun s ->
        let sol = Solver.solve ~seed:99 s problem in
        (sol.Solution.solver, sol.Solution.cost))
      (Solver_registry.applicable problem)
  in
  Printf.printf "\n%s\n" name;
  Hr_util.Tablefmt.print ~header:[ "solver"; "cost" ]
    (List.map (fun (m, c) -> [ m; string_of_int c ]) rows)

let () =
  let spec = { W.Multi_gen.default_spec with W.Multi_gen.n = 96 } in
  let correlated = W.Multi_gen.correlated (Rng.create 7) spec in
  let independent = W.Multi_gen.independent (Rng.create 7) spec in
  optimize "correlated phases (tasks can hyperreconfigure in lockstep)"
    (Interval_cost.of_task_set correlated);
  optimize "independent phases (staggered boundaries)"
    (Interval_cost.of_task_set independent)
