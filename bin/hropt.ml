(* CLI: optimize (hyper)reconfiguration plans for a workload.

   Workloads: the SHyRA counter trace (the paper's experiment) or
   synthetic multi-task phased workloads.  Solvers are resolved by name
   through Solver_registry: any registered backend, "portfolio" (run
   every applicable backend and tabulate), "race" (run them on parallel
   domains and keep the best), "eval" (referee a saved plan) or "list"
   (show the registry). *)

open Cmdliner
open Hr_core
module Rng = Hr_util.Rng
module Shyra = Hr_shyra
module W = Hr_workload

let counter_oracle mode split =
  let run = Shyra.Counter.build ~init:0 ~bound:10 () in
  let trace = Shyra.Tracer.trace ~mode run.Shyra.Counter.program in
  let parts =
    if split = "single" then Shyra.Tasks.single_task else Shyra.Tasks.four_tasks
  in
  (Shyra.Tasks.oracle trace parts, Shyra.Tasks.split trace parts)

let synthetic_oracle seed m n correlated =
  let sizes = Array.init m (fun j -> if j = m - 1 then 24 else 8) in
  let spec = { W.Multi_gen.default_spec with W.Multi_gen.m; n; local_sizes = sizes } in
  let gen = if correlated then W.Multi_gen.correlated else W.Multi_gen.independent in
  let ts = gen (Rng.create seed) spec in
  (Interval_cost.of_task_set ts, ts)

let file_oracle path =
  let trace = Trace_io.load path in
  let ts = Task_set.single ~name:"trace" trace in
  (Interval_cost.of_task_set ts, ts)

(* Old method names from before the registry, kept as aliases. *)
let alias = function
  | "local" -> "hill-climb"
  | "exact" -> "mt-dp"
  | s -> s

let list_registry () =
  Hr_util.Tablefmt.print ~header:[ "solver"; "kind"; "description" ]
    (List.map
       (fun s ->
         [ s.Solver.name; Solver.kind_name s.Solver.kind; s.Solver.doc ])
       (Solver_registry.all ()))

let run workload mode split seed m n correlated method_ seed_opt show_figures
    trace_file plan_file =
  let method_ = alias method_ in
  if method_ = "list" then begin
    list_registry ();
    0
  end
  else begin
    let tracer_mode =
      match mode with
      | "diff" -> Shyra.Tracer.Diff
      | "inuse" -> Shyra.Tracer.In_use
      | _ -> Shyra.Tracer.Field_diff
    in
    let oracle, ts =
      match workload with
      | "counter" -> counter_oracle tracer_mode split
      | "synthetic" -> synthetic_oracle seed m n correlated
      | "file" -> (
          match trace_file with
          | Some path -> file_oracle path
          | None -> failwith "workload 'file' needs --trace-file")
      | s -> failwith (Printf.sprintf "unknown workload %S (counter|synthetic|file)" s)
    in
    let problem = Problem.make oracle in
    let sols =
      match method_ with
      | "portfolio" ->
          List.map
            (fun s -> Solver.solve ~seed:seed_opt s problem)
            (Solver_registry.applicable problem)
      | "race" -> [ Solver_registry.race ~seed:seed_opt problem ]
      | "eval" -> (
          match plan_file with
          | None -> failwith "method 'eval' needs --plan-file"
          | Some path -> (
              let bp = Plan_io.load path in
              match Machine_vm.execute_breakpoints ts bp with
              | Ok vm_run ->
                  [
                    Solution.make ~solver:"saved plan (referee VM)"
                      ~cost:vm_run.Machine_vm.total_time bp;
                  ]
              | Error e -> failwith ("invalid plan: " ^ e)))
      | name -> [ Solver_registry.solve ~seed:seed_opt name problem ]
    in
    Option.iter
      (fun path ->
        match sols with
        | best :: _ when method_ <> "eval" ->
            Plan_io.save path best.Solution.bp;
            Printf.printf "plan written to %s\n" path
        | _ -> ())
      (if method_ = "eval" then None else plan_file);
    let disabled =
      Sync_cost.disabled_cost ~n:oracle.Interval_cost.n
        ~machine_width:(Task_set.total_local_switches ts) ()
    in
    Format.printf "instance: %a, disabled-baseline cost %d@." Problem.pp problem
      disabled;
    Hr_util.Tablefmt.print ~header:[ "solver"; "cost"; "exact"; "% of disabled" ]
      (List.map
         (fun sol ->
           [
             sol.Solution.solver;
             string_of_int sol.Solution.cost;
             (if sol.Solution.exact then "yes" else "no");
             Printf.sprintf "%.1f"
               (100. *. float_of_int sol.Solution.cost /. float_of_int disabled);
           ])
         sols);
    (if show_figures then
       match sols with
       | best :: _ ->
           print_newline ();
           print_string (Hr_viz.Figures.fig2 ts best.Solution.bp);
           print_newline ();
           print_string (Hr_viz.Figures.fig3 ts best.Solution.bp)
       | _ -> ());
    0
  end

let workload =
  Arg.(value & pos 0 string "counter" & info [] ~docv:"WORKLOAD" ~doc:"counter or synthetic.")

let mode =
  Arg.(value & opt string "field" & info [ "mode" ] ~doc:"Counter trace mode: diff, field, inuse.")

let split =
  Arg.(value & opt string "four" & info [ "split" ] ~doc:"Counter task split: single or four.")

let seed = Arg.(value & opt int 1 & info [ "workload-seed" ] ~doc:"Synthetic workload seed.")

let m = Arg.(value & opt int 4 & info [ "m" ] ~doc:"Synthetic task count.")

let n = Arg.(value & opt int 96 & info [ "n" ] ~doc:"Synthetic step count.")

let correlated =
  Arg.(value & flag & info [ "correlated" ] ~doc:"Correlate phase boundaries across tasks.")

let method_ =
  Arg.(
    value
    & opt string "portfolio"
    & info [ "method" ]
        ~doc:
          "A registered solver name (see --method list), or: portfolio (all \
           applicable solvers), race (parallel race, best wins), eval (referee \
           a saved plan), list (show the registry).")

let seed_opt = Arg.(value & opt int 2004 & info [ "seed" ] ~doc:"Optimizer RNG seed.")

let show_figures =
  Arg.(value & flag & info [ "figures" ] ~doc:"Render Fig.2/Fig.3-style views of the best plan.")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-file" ] ~docv:"FILE" ~doc:"Trace file for the 'file' workload.")

let plan_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan-file" ] ~docv:"FILE"
        ~doc:
          "With --method eval: load and referee-evaluate this plan.  With other \
           methods: write the best plan here.")

let cmd =
  let doc = "optimize (hyper)reconfiguration plans" in
  Cmd.v (Cmd.info "hropt" ~doc)
    Term.(
      const run $ workload $ mode $ split $ seed $ m $ n $ correlated $ method_
      $ seed_opt $ show_figures $ trace_file $ plan_file)

let () =
  match Cmd.eval' ~catch:false cmd with
  | code -> exit code
  | exception (Invalid_argument msg | Failure msg | Sys_error msg) ->
      Printf.eprintf "hropt: %s\n" msg;
      exit 2
