(* CLI: optimize (hyper)reconfiguration plans for a workload.

   Workloads: the SHyRA counter trace (the paper's experiment) or
   synthetic multi-task phased workloads.  Solvers are resolved by name
   through Solver_registry: any registered backend, "portfolio" (run
   every applicable backend and tabulate), "race" (run them on parallel
   domains and keep the best), "eval" (referee a saved plan) or "list"
   (show the registry).

   --deadline-ms bounds any solver run with a cooperative budget
   (best-so-far answers, marked inexact); --telemetry FILE dumps the
   structured per-solver report as JSON (schema in docs/solvers.md). *)

open Cmdliner
open Hr_core
module Budget = Hr_util.Budget
module Rng = Hr_util.Rng
module Shyra = Hr_shyra
module W = Hr_workload

(* The closed string enums, parsed strictly (exit 2 on a typo) and
   eagerly — an unknown --split must fail even under a workload that
   never consumes it. *)
let workload_enum = [ ("counter", `Counter); ("synthetic", `Synthetic); ("file", `File) ]

let mode_enum =
  [
    ("diff", Shyra.Tracer.Diff);
    ("field", Shyra.Tracer.Field_diff);
    ("inuse", Shyra.Tracer.In_use);
  ]

let split_enum =
  [ ("single", Shyra.Tasks.single_task); ("four", Shyra.Tasks.four_tasks) ]

let counter_oracle ?policy ?max_bytes mode parts =
  let run = Shyra.Counter.build ~init:0 ~bound:10 () in
  let trace = Shyra.Tracer.trace ~mode run.Shyra.Counter.program in
  let ts = Shyra.Tasks.split trace parts in
  (Interval_cost.of_task_set ?policy ?max_bytes ts, ts)

let synthetic_oracle ?policy ?max_bytes seed m n correlated =
  let sizes = Array.init m (fun j -> if j = m - 1 then 24 else 8) in
  let spec = { W.Multi_gen.default_spec with W.Multi_gen.m; n; local_sizes = sizes } in
  let gen = if correlated then W.Multi_gen.correlated else W.Multi_gen.independent in
  let ts = gen (Rng.create seed) spec in
  (Interval_cost.of_task_set ?policy ?max_bytes ts, ts)

let file_oracle ?policy ?max_bytes path =
  let trace = Trace_io.load path in
  let ts = Task_set.single ~name:"trace" trace in
  (Interval_cost.of_task_set ?policy ?max_bytes ts, ts)

(* Old method names from before the registry, kept as aliases. *)
let alias = function
  | "local" -> "hill-climb"
  | "exact" -> "mt-dp"
  | s -> s

let list_registry () =
  Hr_util.Tablefmt.print ~header:[ "solver"; "kind"; "description" ]
    (List.map
       (fun (s : Solver.t) ->
         [ s.Solver.name; Solver.kind_name s.Solver.kind; s.Solver.doc ])
       (Solver_registry.all ()))

let run workload mode split seed m n correlated method_ seed_opt deadline_ms
    telemetry_file show_figures trace_file plan_file max_table_mb oracle_policy
    fabric_width =
  Hr_place.Solvers.ensure ();
  let method_ = alias method_ in
  (* Parsed as eagerly as the enums: a bad --max-table-mb fails under
     every workload, not just the ones that build a dense table. *)
  let max_bytes =
    Option.map
      (fun s -> Hr_util.Cli.positive_exn ~what:"--max-table-mb" s * 1024 * 1024)
      max_table_mb
  in
  let policy =
    Hr_util.Cli.enum_exn ~what:"--oracle" Interval_cost.policy_enum oracle_policy
  in
  if method_ = "list" then begin
    list_registry ();
    0
  end
  else begin
    let workload = Hr_util.Cli.enum_exn ~what:"workload" workload_enum workload in
    let tracer_mode = Hr_util.Cli.enum_exn ~what:"trace mode" mode_enum mode in
    let parts = Hr_util.Cli.enum_exn ~what:"split" split_enum split in
    let oracle, ts =
      match workload with
      | `Counter -> counter_oracle ~policy ?max_bytes tracer_mode parts
      | `Synthetic -> synthetic_oracle ~policy ?max_bytes seed m n correlated
      | `File -> (
          match trace_file with
          | Some path -> file_oracle ~policy ?max_bytes path
          | None -> failwith "workload 'file' needs --trace-file")
    in
    let problem = Problem.make ?max_bytes oracle in
    (* --fabric turns the instance into the placement-aware joint
       problem: the base backends refuse it and the place-* family
       takes over. *)
    let problem =
      match fabric_width with
      | None -> problem
      | Some width ->
          Hr_place.Joint.attach problem
            (Hr_place.Fabric.full ~m:oracle.Interval_cost.m
               ~n:oracle.Interval_cost.n ~width ())
    in
    let budget () =
      match deadline_ms with
      | None -> Budget.unlimited
      | Some ms -> Budget.of_deadline_ms ms
    in
    let t0 = Budget.now_ms () in
    (* One report per executed solver, so --telemetry covers every
       method uniformly. *)
    let reports =
      match method_ with
      | "portfolio" ->
          List.map
            (fun s -> Solver.solve_report ~seed:seed_opt ~budget:(budget ()) s problem)
            (Solver_registry.applicable problem)
      | "race" ->
          snd
            (Solver_registry.race_report ~seed:seed_opt ~budget:(budget ())
               problem)
      | "eval" -> (
          match plan_file with
          | None -> failwith "method 'eval' needs --plan-file"
          | Some path -> (
              let bp = Plan_io.load path in
              match Machine_vm.execute_breakpoints ts bp with
              | Ok vm_run ->
                  [
                    {
                      Solver.solver = "saved plan (referee VM)";
                      kind = Solver.Heuristic;
                      outcome = Solver.Finished;
                      wall_ms = 0.;
                      solution =
                        Some
                          (Solution.make ~solver:"saved plan (referee VM)"
                             ~cost:vm_run.Machine_vm.total_time bp);
                    };
                  ]
              | Error e -> failwith ("invalid plan: " ^ e)))
      | name ->
          [ Solver.solve_report ~seed:seed_opt ~budget:(budget ())
              (Solver_registry.find_exn name)
              problem ]
    in
    let total_ms = Budget.now_ms () -. t0 in
    let sols = List.filter_map (fun r -> r.Solver.solution) reports in
    (* Surface crashes: contained in the race, but never silent. *)
    List.iter
      (fun r ->
        match r.Solver.outcome with
        | Solver.Crashed e ->
            Printf.eprintf "hropt: solver %s crashed: %s\n" r.Solver.solver
              (Printexc.to_string e)
        | _ -> ())
      reports;
    if sols = [] then failwith "no solver produced a solution";
    (* The saved plan is the best solution, not the registry-order
       head: under --method portfolio those differ whenever an exact
       backend is beaten to the front of the list. *)
    let best = Solution.best sols in
    Option.iter
      (fun path ->
        if method_ <> "eval" then begin
          Plan_io.save path best.Solution.bp;
          Printf.printf "plan written to %s (%s, cost %d)\n" path
            best.Solution.solver best.Solution.cost
        end)
      plan_file;
    let disabled =
      Sync_cost.disabled_cost ~n:oracle.Interval_cost.n
        ~machine_width:(Task_set.total_local_switches ts) ()
    in
    Format.printf "instance: %a, disabled-baseline cost %d@." Problem.pp problem
      disabled;
    Hr_util.Tablefmt.print
      ~header:[ "solver"; "cost"; "exact"; "% of disabled"; "wall ms"; "outcome" ]
      (List.map
         (fun r ->
           match r.Solver.solution with
           | Some sol ->
               [
                 sol.Solution.solver;
                 string_of_int sol.Solution.cost;
                 (if sol.Solution.exact then "yes"
                  else if sol.Solution.cut_off then "cut off"
                  else "no");
                 Printf.sprintf "%.1f"
                   (100. *. float_of_int sol.Solution.cost /. float_of_int disabled);
                 Printf.sprintf "%.1f" r.Solver.wall_ms;
                 Solver.outcome_name r.Solver.outcome;
               ]
           | None ->
               [
                 r.Solver.solver;
                 "-";
                 "-";
                 "-";
                 Printf.sprintf "%.1f" r.Solver.wall_ms;
                 Solver.outcome_name r.Solver.outcome;
               ])
         reports);
    Option.iter
      (fun path ->
        let t =
          Telemetry.make ~label:method_ ?deadline_ms ~seed:seed_opt ~problem
            ~total_ms reports
        in
        Telemetry.save path t;
        Printf.printf "telemetry written to %s\n" path)
      telemetry_file;
    (if show_figures then
       match sols with
       | _ :: _ ->
           print_newline ();
           print_string (Hr_viz.Figures.fig2 ts best.Solution.bp);
           print_newline ();
           print_string (Hr_viz.Figures.fig3 ts best.Solution.bp)
       | _ -> ());
    0
  end

let workload =
  Arg.(
    value
    & pos 0 string "counter"
    & info [] ~docv:"WORKLOAD" ~doc:"counter, synthetic or file.")

let mode =
  Arg.(value & opt string "field" & info [ "mode" ] ~doc:"Counter trace mode: diff, field, inuse.")

let split =
  Arg.(value & opt string "four" & info [ "split" ] ~doc:"Counter task split: single or four.")

let seed = Arg.(value & opt int 1 & info [ "workload-seed" ] ~doc:"Synthetic workload seed.")

let m = Arg.(value & opt int 4 & info [ "m" ] ~doc:"Synthetic task count.")

let n = Arg.(value & opt int 96 & info [ "n" ] ~doc:"Synthetic step count.")

let correlated =
  Arg.(value & flag & info [ "correlated" ] ~doc:"Correlate phase boundaries across tasks.")

let method_ =
  Arg.(
    value
    & opt string "portfolio"
    & info [ "method" ]
        ~doc:
          "A registered solver name (see --method list), or: portfolio (all \
           applicable solvers), race (parallel race, best wins), eval (referee \
           a saved plan), list (show the registry).")

let seed_opt = Arg.(value & opt int 2004 & info [ "seed" ] ~doc:"Optimizer RNG seed.")

let deadline_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Cooperative wall-clock budget per solver run.  Iterative backends \
           return their best-so-far plan (marked inexact) when it expires; \
           instantaneous backends ignore it.")

let telemetry_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Write per-solver telemetry (wall-clock, outcome, iterations, \
           oracle-cache stats) as JSON to $(docv).")

let show_figures =
  Arg.(value & flag & info [ "figures" ] ~doc:"Render Fig.2/Fig.3-style views of the best plan.")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-file" ] ~docv:"FILE" ~doc:"Trace file for the 'file' workload.")

let plan_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan-file" ] ~docv:"FILE"
        ~doc:
          "With --method eval: load and referee-evaluate this plan.  With other \
           methods: write the best plan here.")

let max_table_mb =
  Arg.(
    value
    & opt (some string) None
    & info [ "max-table-mb" ] ~docv:"MB"
        ~doc:
          "Dense oracle-table memory cap in MiB (a positive integer; default \
           128).  Over-budget instances degrade down the oracle ladder \
           (sparse index, then the memory-bounded memoizer); telemetry \
           reports the chosen cache kind, element width and resident bytes.")

let oracle_policy =
  Arg.(
    value
    & opt string "auto"
    & info [ "oracle" ] ~docv:"POLICY"
        ~doc:
          "Oracle ladder rung: dense (always precompute the O(1) tables), \
           sparse (always the occurrence index — linear memory, O(S log n) \
           queries), or auto (dense while it fits the byte budget, sparse \
           above it; the default).")

let fabric_width =
  Arg.(
    value
    & opt (some int) None
    & info [ "fabric" ] ~docv:"W"
        ~doc:
          "Attach a width-$(docv) placement fabric (every task sized 1, \
           resident throughout, relocation cost 1) and solve the joint \
           placement-aware objective — handled by the place-* backends, \
           refused by the base ones.")

let cmd =
  let doc = "optimize (hyper)reconfiguration plans" in
  Cmd.v (Cmd.info "hropt" ~doc)
    Term.(
      const run $ workload $ mode $ split $ seed $ m $ n $ correlated $ method_
      $ seed_opt $ deadline_ms $ telemetry_file $ show_figures $ trace_file
      $ plan_file $ max_table_mb $ oracle_policy $ fabric_width)

(* cmdliner spells single-char options "-m"/"-n"; accept the "--m"/
   "--n" spelling too (it cannot be a prefix of another option, but
   cmdliner's prefix matching refuses it as ambiguous with --method /
   --mode). *)
let argv =
  Array.map
    (function "--m" -> "-m" | "--n" -> "-n" | a -> a)
    Sys.argv

let () =
  match Cmd.eval' ~catch:false ~argv cmd with
  | code -> exit code
  | exception (Invalid_argument msg | Failure msg | Sys_error msg
              | Solver.Rejected msg) ->
      Printf.eprintf "hropt: %s\n" msg;
      exit 2
