(* CLI: the differential conformance harness.

   hrcheck --cases N --seed S [--solver NAME]... [--deadline-ms D]
           [--corpus DIR] [--failure-out FILE]

   Replays the persisted failure corpus, generates N random Problem
   instances spanning the paper's cost-model x mode x class x upload
   product space, runs every registered backend on each, and evaluates
   the metamorphic-invariant catalogue (lib/check).  Failures are
   greedily shrunk before reporting; exit status 1 flags any
   violation.  See docs/TESTING.md. *)

open Cmdliner
module Check = Hr_check

let run cases seed solvers deadline_ms corpus_dir failure_out place_fraction =
  Hr_place.Solvers.ensure ();
  let solvers =
    match solvers with
    | [] -> Hr_core.Solver_registry.all ()
    | names -> List.map Hr_core.Solver_registry.find_exn names
  in
  let profile =
    match place_fraction with
    | None -> Check.Gen.default_profile
    | Some f -> { Check.Gen.default_profile with Check.Gen.place_fraction = f }
  in
  let corpus =
    match corpus_dir with
    | None -> []
    | Some dir ->
        List.filter_map
          (fun (file, loaded) ->
            match loaded with
            | Ok case -> Some (file, case)
            | Error msg ->
                Printf.eprintf "hrcheck: skipping corpus entry %s: %s\n" file msg;
                None)
          (Check.Corpus.load_dir dir)
  in
  let summary, failures =
    Check.Runner.run ~solvers ~profile ?deadline_ms ~corpus ~log:print_endline
      ~cases ~seed ()
  in
  Printf.printf "%d case(s), seed %d%s\n" (Check.Runner.cases_run summary) seed
    (match deadline_ms with
    | Some ms -> Printf.sprintf ", deadline %d ms per solve" ms
    | None -> "");
  print_string (Check.Runner.table summary);
  print_newline ();
  List.iter (fun f -> Format.printf "@.%a@." Check.Runner.pp_failure f) failures;
  (match (failures, failure_out) with
  | f :: _, Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Check.Case.to_string f.Check.Runner.shrunk));
      Printf.printf "first shrunk counterexample written to %s\n" path
  | _ -> ());
  if failures = [] then begin
    print_endline "all invariants hold";
    0
  end
  else begin
    Printf.printf "%d invariant violation(s)\n" (List.length failures);
    1
  end

let cases =
  Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N" ~doc:"Number of random cases to generate.")

let seed =
  Arg.(value & opt int 2004 & info [ "seed" ] ~docv:"S" ~doc:"Base seed: generator stream and per-case solver seeds derive from it.")

let solvers =
  Arg.(
    value
    & opt_all string []
    & info [ "solver" ] ~docv:"NAME"
        ~doc:"Check only this registered solver (repeatable).  Default: the whole registry.")

let deadline_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"D"
        ~doc:"Cooperative budget per solve; cut-off plans must still uphold every invariant.")

let corpus_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:"Replay every *.json case in $(docv) before random generation.")

let failure_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "failure-out" ] ~docv:"FILE"
        ~doc:"Write the first shrunk counterexample to $(docv) (CI uploads it as an artifact).")

let place_fraction =
  Arg.(
    value
    & opt (some float) None
    & info [ "place-fraction" ] ~docv:"F"
        ~doc:
          "Probability of attaching a random fabric to a tiny generated case \
           (placement-aware family).  Default: the generator profile's 0.25; \
           1.0 makes every tiny draw a placement case.")

let cmd =
  let doc = "differential conformance harness for the PHC solver registry" in
  Cmd.v (Cmd.info "hrcheck" ~doc)
    Term.(
      const run $ cases $ seed $ solvers $ deadline_ms $ corpus_dir $ failure_out
      $ place_fraction)

let () =
  match Cmd.eval' ~catch:false cmd with
  | code -> exit code
  | exception (Invalid_argument msg | Failure msg | Sys_error msg) ->
      Printf.eprintf "hrcheck: %s\n" msg;
      exit 2
