(* CLI: run a SHyRA application, optionally dump its configuration
   sequence and its context-requirement trace. *)

open Cmdliner
open Hr_core
module Shyra = Hr_shyra

let mode_of_string = function
  | "diff" -> Ok Shyra.Tracer.Diff
  | "field" -> Ok Shyra.Tracer.Field_diff
  | "inuse" -> Ok Shyra.Tracer.In_use
  | s -> Error (Printf.sprintf "unknown trace mode %S (diff|field|inuse)" s)

let build_app name arg1 arg2 =
  match name with
  | "counter" ->
      let run = Shyra.Counter.build ~init:arg1 ~bound:arg2 () in
      Ok
        ( run.Shyra.Counter.program,
          Printf.sprintf "counter %d -> %d: %d increments, final value %d" arg1 arg2
            run.Shyra.Counter.iterations
            (Shyra.Machine.read_nibble run.Shyra.Counter.final 0) )
  | "adder" ->
      let sum, carry = Shyra.Serial_adder.run ~a:arg1 ~b:arg2 in
      Ok
        ( Shyra.Serial_adder.build (),
          Printf.sprintf "adder: %d + %d = %d (carry %b)" arg1 arg2 sum carry )
  | "lfsr" ->
      let steps = max 1 arg2 in
      Ok
        ( Shyra.Lfsr.build ~steps,
          Printf.sprintf "lfsr: seed %d, %d steps -> %d" arg1 steps
            (Shyra.Lfsr.run ~seed:arg1 ~steps) )
  | "parity" ->
      Ok
        ( Shyra.Parity.build (),
          Printf.sprintf "parity of %d = %b" arg1 (Shyra.Parity.run arg1) )
  | "gray" ->
      Ok
        ( Shyra.Gray.build (),
          Printf.sprintf "gray(%d) = %d" arg1 (Shyra.Gray.run arg1) )
  | "rule90" ->
      let steps = max 1 arg2 in
      Ok
        ( Shyra.Rule90.build ~steps,
          Printf.sprintf "rule90: cells %#x, %d steps -> %#x" arg1 steps
            (Shyra.Rule90.run ~cells:arg1 ~steps) )
  | s ->
      Error (Printf.sprintf "unknown app %S (counter|adder|lfsr|parity|gray|rule90)" s)

let build_from_file path =
  match Shyra.Asm_text.load path with
  | Error e -> Error e
  | Ok instrs ->
      let program = Shyra.Asm.assemble instrs in
      let final = Shyra.Program.run program (Shyra.Machine.create ()) in
      Ok
        ( program,
          Format.asprintf "program %s: final state %a" path Shyra.Machine.pp final )

(* Resolve [name] through the solver registry and print the optimized
   plan for the program's single-task trace, with wall-clock timing. *)
let optimize_trace ~mode ~solver program =
  let trace = Shyra.Tracer.trace ~mode program in
  let problem = Problem.of_trace trace in
  let r = Solver.solve_report (Solver_registry.find_exn solver) problem in
  match r.Solver.solution with
  | Some sol ->
      Format.printf "optimized (%a): %a@." Problem.pp problem Solution.pp sol;
      Printf.printf "solver %s: %.1f ms, %s\n" r.Solver.solver r.Solver.wall_ms
        (Solver.outcome_name r.Solver.outcome);
      Printf.printf "hyperreconfigure before steps: %s\n"
        (String.concat ", " (List.map string_of_int (Solution.break_steps sol)))
  | None -> (
      match r.Solver.outcome with
      | Solver.Crashed e -> raise e
      | _ -> failwith "solver produced no solution")

let run app arg1 arg2 mode show_configs show_trace dump optimize asm_file =
  match
    ( (match asm_file with
      | Some path -> build_from_file path
      | None -> build_app app arg1 arg2),
      mode_of_string mode )
  with
  | Error e, _ | _, Error e ->
      prerr_endline e;
      1
  | Ok (program, summary), Ok mode ->
      print_endline summary;
      Printf.printf "program: %d reconfiguration steps\n" (Shyra.Program.length program);
      Option.iter
        (fun path ->
          Trace_io.save path (Shyra.Tracer.trace ~mode program);
          Printf.printf "trace written to %s\n" path)
        dump;
      if show_configs then
        List.iteri
          (fun i step ->
            Format.printf "%3d %-8s %a@." i step.Shyra.Program.label Shyra.Config.pp
              step.Shyra.Program.cfg)
          (Shyra.Program.steps program);
      if show_trace then begin
        let trace = Shyra.Tracer.trace ~mode program in
        let sizes = Trace.sizes trace in
        Format.printf "trace (%d steps, requirement sizes %a):@." (Trace.length trace)
          Hr_util.Stats.pp_summary
          (Hr_util.Stats.summarize (Hr_util.Stats.of_ints sizes));
        Format.printf "%a" Trace.pp trace
      end;
      Option.iter (fun solver -> optimize_trace ~mode ~solver program) optimize;
      0

let app_arg =
  Arg.(value & pos 0 string "counter" & info [] ~docv:"APP" ~doc:"Application to run.")

let arg1 =
  Arg.(value & opt int 0 & info [ "a"; "init" ] ~docv:"N" ~doc:"First operand / initial value / seed.")

let arg2 =
  Arg.(value & opt int 10 & info [ "b"; "bound" ] ~docv:"N" ~doc:"Second operand / bound / steps.")

let mode =
  Arg.(value & opt string "field" & info [ "mode" ] ~docv:"MODE" ~doc:"Trace mode: diff, field or inuse.")

let show_configs =
  Arg.(value & flag & info [ "configs" ] ~doc:"Print every configuration.")

let show_trace =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the context-requirement trace.")

let dump =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump" ] ~docv:"FILE" ~doc:"Write the trace to $(docv) (Trace_io format).")

let optimize =
  Arg.(
    value
    & opt (some string) None
    & info [ "optimize" ] ~docv:"SOLVER"
        ~doc:
          "Optimize the traced run as a single-task PHC instance with the named \
           registered solver (e.g. st-dp); see hropt --method list.")

let asm_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "asm" ] ~docv:"FILE" ~doc:"Run a textual assembly program instead of a built-in app.")

let cmd =
  let doc = "run applications on the simulated SHyRA architecture" in
  Cmd.v
    (Cmd.info "shyra_run" ~doc)
    Term.(
      const run $ app_arg $ arg1 $ arg2 $ mode $ show_configs $ show_trace $ dump
      $ optimize $ asm_file)

let () =
  match Cmd.eval' ~catch:false cmd with
  | code -> exit code
  | exception (Invalid_argument msg | Failure msg | Sys_error msg
              | Solver.Rejected msg) ->
      Printf.eprintf "shyra_run: %s\n" msg;
      exit 2
