(* CLI: compile boolean expressions to SHyRA programs, and generate
   large phase-structured benchmark traces.

   Examples:
     dune exec bin/hrcompile.exe -- '(a ^ b) & !(c | d)' --stats
     dune exec bin/hrcompile.exe -- 'a & b' --emit out.shyra
     dune exec bin/hrcompile.exe -- --steps 50000 --tasks 4 \
       --dump-trace big.trace *)

open Cmdliner
module Shyra = Hr_shyra
module W = Hr_workload

let compile source stats emit trace_out =
  match Shyra.Expr_parse.parse source with
  | Error e ->
      prerr_endline ("parse error: " ^ e);
      1
  | Ok expr ->
      let simplified = Shyra.Expr.simplify expr in
      let compiled = Shyra.Expr.compile expr in
      Printf.printf "expression: %s\n" (Shyra.Expr_parse.print expr);
      if simplified <> expr then
        Printf.printf "simplified: %s\n" (Shyra.Expr_parse.print simplified);
      Printf.printf "inputs:     %s\n"
        (String.concat ", "
           (List.map
              (fun (n, r) -> Printf.sprintf "%s->r%d" n r)
              compiled.Shyra.Expr.input_regs));
      Printf.printf "result:     r%d\n" compiled.Shyra.Expr.result;
      Printf.printf "LUT ops:    %d in %d cycles\n" compiled.Shyra.Expr.ops
        (Shyra.Program.length compiled.Shyra.Expr.program);
      if stats then begin
        let trace = Shyra.Tracer.trace compiled.Shyra.Expr.program in
        Format.printf "trace:      %a@." Hr_core.Trace_stats.pp
          (Hr_core.Trace_stats.analyze trace)
      end;
      Option.iter
        (fun path ->
          Hr_core.Trace_io.save path (Shyra.Tracer.trace compiled.Shyra.Expr.program);
          Printf.printf "trace written to %s\n" path)
        trace_out;
      Option.iter
        (fun path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              List.iteri
                (fun i step ->
                  output_string oc
                    (Printf.sprintf "# cycle %d (%s)\n" i step.Shyra.Program.label);
                  output_string oc
                    (Format.asprintf "# %a\n" Shyra.Config.pp step.Shyra.Program.cfg))
                (Shyra.Program.steps compiled.Shyra.Expr.program));
          Printf.printf "configuration listing written to %s\n" path)
        emit;
      0

(* The large-trace generator (docs/scaling.md): looped FSM/LFSR/Rule-90
   bursts with long empty-requirement dwells, sized for the sparse
   oracle track.  tasks = 1 writes FILE; tasks > 1 writes FILE.t0,
   FILE.t1, ... (one Trace_io file per task). *)
let generate steps tasks seed stats trace_out =
  let steps = Hr_util.Cli.positive_exn ~what:"--steps" steps in
  if tasks < 1 then failwith "--tasks must be >= 1";
  let ts = W.Large_gen.task_set ~seed ~steps ~tasks () in
  for j = 0 to tasks - 1 do
    let trace = (Hr_core.Task_set.get ts j).Hr_core.Task_set.trace in
    let nsegs = Array.length (Hr_core.Trace.segments trace) in
    Printf.printf "task %d: %d steps, %d segments (%.1fx compression)\n" j steps
      nsegs
      (float_of_int steps /. float_of_int nsegs);
    if stats then
      Format.printf "  %a@." Hr_core.Trace_stats.pp
        (Hr_core.Trace_stats.analyze trace)
  done;
  Option.iter
    (fun path ->
      if tasks = 1 then begin
        Hr_core.Trace_io.save path (Hr_core.Task_set.get ts 0).Hr_core.Task_set.trace;
        Printf.printf "trace written to %s\n" path
      end
      else
        for j = 0 to tasks - 1 do
          let p = Printf.sprintf "%s.t%d" path j in
          Hr_core.Trace_io.save p (Hr_core.Task_set.get ts j).Hr_core.Task_set.trace;
          Printf.printf "trace written to %s\n" p
        done)
    trace_out;
  0

let run source stats emit trace_out gen_steps gen_tasks gen_seed =
  match (gen_steps, source) with
  | Some steps, None -> generate steps gen_tasks gen_seed stats trace_out
  | Some _, Some _ -> failwith "EXPR and --steps are mutually exclusive"
  | None, Some source -> compile source stats emit trace_out
  | None, None -> failwith "need an EXPR to compile, or --steps N to generate"

let source =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"EXPR" ~doc:"Boolean expression (omit with $(b,--steps)).")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print trace statistics.")

let emit =
  Arg.(value & opt (some string) None & info [ "emit" ] ~docv:"FILE" ~doc:"Write a configuration listing.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "dump-trace" ] ~docv:"FILE" ~doc:"Write the requirement trace(s).")

let gen_steps =
  Arg.(
    value
    & opt (some string) None
    & info [ "steps" ] ~docv:"N"
        ~doc:
          "Generator mode: instead of compiling an expression, generate a \
           phase-structured $(docv)-step benchmark trace per task (looped \
           FSM/LFSR/Rule-90 bursts separated by long dwells; deterministic in \
           $(b,--gen-seed)).  Sized for the sparse oracle: 10⁴–10⁵ steps \
           compress ~10x into run-length segments.")

let gen_tasks =
  Arg.(
    value & opt int 1
    & info [ "tasks" ] ~docv:"M"
        ~doc:
          "Generator mode: number of tasks.  1 writes $(b,--dump-trace) FILE; \
           more write FILE.t0, FILE.t1, ...")

let gen_seed =
  Arg.(value & opt int 2004 & info [ "gen-seed" ] ~docv:"S" ~doc:"Generator seed.")

let cmd =
  let doc = "compile boolean expressions to SHyRA programs; generate benchmark traces" in
  Cmd.v (Cmd.info "hrcompile" ~doc)
    Term.(
      const run $ source $ stats $ emit $ trace_out $ gen_steps $ gen_tasks
      $ gen_seed)

let () =
  match Cmd.eval' ~catch:false cmd with
  | code -> exit code
  | exception (Invalid_argument msg | Failure msg | Sys_error msg) ->
      Printf.eprintf "hrcompile: %s\n" msg;
      exit 2
