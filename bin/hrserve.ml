(* CLI: the batched solve service.

   hrserve [--workers N] [--deadline-ms MS] [--solver NAME]...
           [--max-queue N] [--seed S] [--summary FILE]
           [--cache-dir DIR] [--max-table-mb MB]

   A JSON-lines request/response loop over stdin/stdout: each input
   line is a `hyperreconf.case/1` document (the conformance-corpus
   format), or an envelope {"id": "...", "case": {...}} to choose the
   response id.  Requests are collected into batches of at most
   --max-queue and solved on the persistent domain pool (lib/util/pool)
   with a solver race per instance; one `hyperreconf.result/1` line is
   written per request, in input order.  Malformed lines and failing
   solves produce structured error results — the process never dies on
   a bad request.  Backpressure is the batch boundary: stdin is not
   read while a full batch is in flight.

   Oracle reuse is two-level: a process-wide build cache shares
   problems across batches (not just within one batch), and with
   --cache-dir the dense tables also persist on disk across server
   restarts (docs/caching.md).  --max-table-mb caps each instance's
   dense-table memory; over-budget oracles degrade to the bounded
   memoizer.

   At EOF a `hyperreconf.batch/1` document aggregating every request is
   written to --summary (and a one-line digest to stderr).  See
   docs/serving.md. *)

open Cmdliner
open Hr_core
module Check = Hr_check

type parsed =
  | Request of Batch.request
  | Bad of string * string  (* id, error *)

let parse_line ?max_table_bytes ?cache_dir ~id line =
  match Telemetry.json_of_string line with
  | Error e -> Bad (id, e)
  | Ok json ->
      let id, case_json =
        match json with
        | Telemetry.Obj fields when List.mem_assoc "case" fields ->
            let id =
              match List.assoc_opt "id" fields with
              | Some (Telemetry.String s) -> s
              | Some (Telemetry.Int i) -> string_of_int i
              | _ -> id
            in
            (id, List.assoc "case" fields)
        | _ -> (id, json)
      in
      (match Check.Case.of_json case_json with
      | Error e -> Bad (id, e)
      | Ok case ->
          (* The digest of the canonical case JSON is the in-process
             dedup key — the same structural-hash scheme the disk cache
             uses, over the whole problem identity (oracle inputs plus
             params/mode/class, which change the Problem even when the
             tables agree).  Identical instances share one build across
             every batch of the process. *)
          Request
            (Batch.request
               ~key:(Digest.to_hex (Digest.string (Check.Case.to_string case)))
               ~id (fun () ->
                 Check.Case.problem ?max_table_bytes ?cache_dir case)))

let solvers_of_names names =
  match names with
  | [] -> Solver_registry.applicable
  | names ->
      let chosen = List.map Solver_registry.find_exn names in
      fun problem -> List.filter (fun (s : Solver.t) -> s.Solver.handles problem) chosen

let run workers deadline_ms solver_names max_queue seed summary_file cache_dir
    max_table_mb =
  if max_queue < 1 then failwith "--max-queue must be >= 1";
  let max_table_bytes =
    Option.map
      (fun s -> Hr_util.Cli.positive_exn ~what:"--max-table-mb" s * 1024 * 1024)
      max_table_mb
  in
  let solvers = solvers_of_names solver_names in
  let pool = Hr_util.Pool.create ?workers () in
  (* Outlives every batch: later batches reuse earlier batches'
     precomputed problems. *)
  let build_cache = Batch.build_cache () in
  let all_responses = ref [] (* reversed *) in
  let total_ms = ref 0. and shared_builds = ref 0 in
  let emit (r : Batch.response) =
    all_responses := r :: !all_responses;
    print_string (Telemetry.json_to_string (Batch.response_to_json r));
    flush stdout
  in
  let flush_batch pending =
    (* [pending] is reversed (request order restored here); parse
       failures already carry their error outcome and skip the pool. *)
    let batch_requests =
      List.filter_map (function Request r -> Some r | Bad _ -> None) pending
    in
    let batch =
      Batch.run ~pool ~seed ?deadline_ms ~solvers ~cache:build_cache
        (List.rev batch_requests)
    in
    total_ms := !total_ms +. batch.Batch.total_ms;
    shared_builds := !shared_builds + batch.Batch.shared_builds;
    let solved = ref batch.Batch.responses in
    List.iter
      (function
        | Bad (id, e) -> emit (Batch.error_response ~id ("bad request: " ^ e))
        | Request _ -> (
            match !solved with
            | r :: rest ->
                solved := rest;
                emit r
            | [] -> assert false (* one response per request, in order *)))
      (List.rev pending)
  in
  let rec serve pending npending k =
    match input_line stdin with
    | exception End_of_file -> if pending <> [] then flush_batch pending
    | line when String.trim line = "" -> serve pending npending k
    | line ->
        let pending =
          parse_line ?max_table_bytes ?cache_dir ~id:(Printf.sprintf "#%d" k) line
          :: pending
        in
        if npending + 1 >= max_queue then begin
          flush_batch pending;
          serve [] 0 (k + 1)
        end
        else serve pending (npending + 1) (k + 1)
  in
  serve [] 0 0;
  Hr_util.Pool.shutdown pool;
  let summary =
    {
      Batch.responses = List.rev !all_responses;
      total_ms = !total_ms;
      workers = Hr_util.Pool.size pool;
      deadline_ms;
      shared_builds = !shared_builds;
    }
  in
  let table_cache_stats =
    Option.map (fun dir -> Table_cache.stats (Table_cache.of_dir dir)) cache_dir
  in
  let extra =
    [
      ( "build_cache",
        Telemetry.Obj
          [
            ("problems", Telemetry.Int (Batch.build_cache_size build_cache));
            ("shared", Telemetry.Int (Batch.build_cache_shared build_cache));
          ] );
      ( "table_cache",
        match (cache_dir, table_cache_stats) with
        | Some dir, Some s ->
            Telemetry.Obj
              [
                ("dir", Telemetry.String dir);
                ("hits", Telemetry.Int s.Table_cache.hits);
                ("misses", Telemetry.Int s.Table_cache.misses);
                ("stores", Telemetry.Int s.Table_cache.stores);
                ("invalid", Telemetry.Int s.Table_cache.invalid);
                ("errors", Telemetry.Int s.Table_cache.errors);
              ]
        | _ -> Telemetry.Null );
    ]
  in
  Option.iter
    (fun path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc
            (Telemetry.json_to_string (Batch.to_json ~label:"hrserve" ~extra summary))))
    summary_file;
  let size = List.length summary.Batch.responses in
  let ok =
    List.length
      (List.filter (fun (r : Batch.response) -> Result.is_ok r.Batch.outcome)
         summary.Batch.responses)
  in
  Printf.eprintf "hrserve: %d request(s), %d ok, %d error(s), %.1f ms solving%s\n"
    size ok (size - ok) !total_ms
    (match table_cache_stats with
    | Some s ->
        Printf.sprintf ", table cache %d hit(s) / %d miss(es) / %d store(s)"
          s.Table_cache.hits s.Table_cache.misses s.Table_cache.stores
    | None -> "");
  0

let workers =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker domains in the solve pool (default: the recommended domain count).")

let deadline_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Global cooperative budget per batch, carved into fair per-request \
           slices.  Cut-off results are best-so-far plans, marked inexact.")

let solver_names =
  Arg.(
    value
    & opt_all string []
    & info [ "solver" ] ~docv:"NAME"
        ~doc:
          "Race only this registered solver (repeatable).  Default: every \
           applicable registered solver.")

let max_queue =
  Arg.(
    value
    & opt int 64
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Bounded request queue: at most $(docv) requests are read before the \
           batch is solved and answered (backpressure on stdin).")

let seed =
  Arg.(value & opt int 2004 & info [ "seed" ] ~docv:"S" ~doc:"Solver RNG base seed.")

let summary_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "summary" ] ~docv:"FILE"
        ~doc:"Write the aggregated hyperreconf.batch/1 document to $(docv) at EOF.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persistent dense-table cache directory (created if missing): tables \
           are mmap-loaded from it instead of being rebuilt, and stored into it \
           after cold builds — reuse survives server restarts.")

let max_table_mb =
  Arg.(
    value
    & opt (some string) None
    & info [ "max-table-mb" ] ~docv:"MB"
        ~doc:
          "Per-instance dense-table memory cap in MiB (a positive integer; \
           default 128).  Instances whose table would exceed it degrade to the \
           memory-bounded memoizer.")

let cmd =
  let doc = "batched PHC solve service (JSON lines on stdin/stdout)" in
  Cmd.v (Cmd.info "hrserve" ~doc)
    Term.(
      const run $ workers $ deadline_ms $ solver_names $ max_queue $ seed
      $ summary_file $ cache_dir $ max_table_mb)

let () =
  match Cmd.eval' ~catch:false cmd with
  | code -> exit code
  | exception (Invalid_argument msg | Failure msg | Sys_error msg) ->
      Printf.eprintf "hrserve: %s\n" msg;
      exit 2
