(* CLI: the batched solve service.

   hrserve [--stdio | --listen ADDR]
           [--workers N] [--deadline-ms MS] [--solver NAME]...
           [--max-queue N] [--max-batch N] [--seed S] [--summary FILE]
           [--cache-dir DIR] [--max-table-mb MB] [--max-lru-mb MB]
           [--oracle dense|sparse|auto] [--no-prefetch] [--no-timing]

   Two front-ends over the same JSON-lines protocol (docs/serving.md):

   - stdio (the default, or --stdio): a request/response loop over
     stdin/stdout.  Each input line is a `hyperreconf.case/1` document
     (the conformance-corpus format) or an envelope
     {"id": ..., "deadline_ms": ..., "case": {...}}; requests are
     collected into batches of at most --max-queue and solved on the
     persistent domain pool with a solver race per instance; one
     `hyperreconf.result/1` line is written per request, in input
     order.  At EOF a `hyperreconf.batch/1` summary goes to --summary.

   - --listen unix:PATH or tcp:HOST:PORT: a long-lived concurrent
     socket server (lib/serve).  Many clients multiplex onto one pool
     and one shared LRU oracle cache; past --max-queue queued requests
     admission sheds load with structured `overloaded` errors; idle
     workers prewarm likely-next oracles from request history.  On
     SIGINT/SIGTERM the server drains in-flight work and writes a
     `hyperreconf.serve/1` summary (latency percentiles, cache
     hit-rates) to --summary.

   Malformed lines and failing solves produce structured error results
   — the process never dies on a bad request.  Oracle reuse is
   two-level: the in-process build cache (byte-budgeted LRU under
   --max-lru-mb) shares problems across batches and clients, and with
   --cache-dir the dense tables also persist on disk across restarts
   (docs/caching.md). *)

open Cmdliner
open Hr_core
module Protocol = Hr_serve.Protocol
module Server = Hr_serve.Server

let solvers_of_names names =
  match names with
  | [] -> Solver_registry.applicable
  | names ->
      let chosen = List.map Solver_registry.find_exn names in
      fun problem -> List.filter (fun (s : Solver.t) -> s.Solver.handles problem) chosen

let table_cache_json cache_dir =
  match cache_dir with
  | None -> (None, Telemetry.Null)
  | Some dir ->
      let s = Table_cache.stats (Table_cache.of_dir dir) in
      ( Some s,
        Telemetry.Obj
          [
            ("dir", Telemetry.String dir);
            ("hits", Telemetry.Int s.Table_cache.hits);
            ("misses", Telemetry.Int s.Table_cache.misses);
            ("stores", Telemetry.Int s.Table_cache.stores);
            ("invalid", Telemetry.Int s.Table_cache.invalid);
            ("errors", Telemetry.Int s.Table_cache.errors);
          ] )

let write_summary path json =
  Option.iter
    (fun path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Telemetry.json_to_string json)))
    path

(* ------------------------------------------------------------------ *)
(* stdio mode: batch loop over stdin/stdout.                           *)

let run_stdio ~workers ~deadline_ms ~solvers ~max_queue ~seed ~summary_file
    ~cache_dir ~max_table_bytes ~max_lru_bytes ~oracle ~timing =
  let pool = Hr_util.Pool.create ?workers () in
  (* Outlives every batch: later batches reuse earlier batches'
     precomputed problems, within the LRU byte budget. *)
  let build_cache = Batch.build_cache ?max_bytes:max_lru_bytes () in
  let all_responses = ref [] (* reversed *) in
  let total_ms = ref 0. and shared_builds = ref 0 in
  let emit (r : Batch.response) =
    all_responses := r :: !all_responses;
    print_string (Protocol.response_line ~timing r);
    flush stdout
  in
  let flush_batch pending =
    (* [pending] is reversed (request order restored here); parse
       failures already carry their error outcome and skip the pool. *)
    let batch_requests =
      List.filter_map
        (function Protocol.Request r -> Some r | Protocol.Malformed _ -> None)
        pending
    in
    let batch =
      Batch.run ~pool ~seed ?deadline_ms ~solvers ~cache:build_cache
        (List.rev batch_requests)
    in
    total_ms := !total_ms +. batch.Batch.total_ms;
    shared_builds := !shared_builds + batch.Batch.shared_builds;
    let solved = ref batch.Batch.responses in
    List.iter
      (function
        | Protocol.Malformed { id; error } ->
            emit (Batch.error_response ~id ("bad request: " ^ error))
        | Protocol.Request _ -> (
            match !solved with
            | r :: rest ->
                solved := rest;
                emit r
            | [] -> assert false (* one response per request, in order *)))
      (List.rev pending)
  in
  let rec serve pending npending k =
    match input_line stdin with
    | exception End_of_file -> if pending <> [] then flush_batch pending
    | line when String.trim line = "" -> serve pending npending k
    | line ->
        let pending =
          Protocol.parse_line ?max_table_bytes ?cache_dir ~oracle
            ~fallback_id:(Printf.sprintf "#%d" k) line
          :: pending
        in
        if npending + 1 >= max_queue then begin
          flush_batch pending;
          serve [] 0 (k + 1)
        end
        else serve pending (npending + 1) (k + 1)
  in
  serve [] 0 0;
  (* Snapshot the summary BEFORE the pool goes down: Pool.size and the
     cache statistics must describe the pool that did the work. *)
  let summary =
    {
      Batch.responses = List.rev !all_responses;
      total_ms = !total_ms;
      workers = Hr_util.Pool.size pool;
      deadline_ms;
      shared_builds = !shared_builds;
    }
  in
  let lru_stats = Batch.build_cache_stats build_cache in
  let table_cache_stats, table_cache = table_cache_json cache_dir in
  let solve_samples =
    Array.of_list
      (List.filter_map
         (fun (r : Batch.response) ->
           match r.Batch.outcome with
           | Ok _ -> Some r.Batch.wall_ms
           | Error _ -> None)
         summary.Batch.responses)
  in
  let extra =
    [
      ( "build_cache",
        Telemetry.Obj
          [
            ("problems", Telemetry.Int (Batch.build_cache_size build_cache));
            ("shared", Telemetry.Int (Batch.build_cache_shared build_cache));
          ] );
      ("lru_cache", Batch.build_cache_stats_to_json lru_stats);
      ("latency", Telemetry.latency_summary solve_samples);
      ("table_cache", table_cache);
    ]
  in
  Hr_util.Pool.shutdown pool;
  write_summary summary_file
    (Batch.to_json ~label:"hrserve" ~extra summary);
  let size = List.length summary.Batch.responses in
  let ok =
    List.length
      (List.filter (fun (r : Batch.response) -> Result.is_ok r.Batch.outcome)
         summary.Batch.responses)
  in
  Printf.eprintf "hrserve: %d request(s), %d ok, %d error(s), %.1f ms solving%s\n"
    size ok (size - ok) !total_ms
    (match table_cache_stats with
    | Some s ->
        Printf.sprintf ", table cache %d hit(s) / %d miss(es) / %d store(s)"
          s.Table_cache.hits s.Table_cache.misses s.Table_cache.stores
    | None -> "");
  0

(* ------------------------------------------------------------------ *)
(* Socket mode: long-lived concurrent server.                          *)

let run_socket ~listen ~workers ~deadline_ms ~solvers ~max_queue ~max_batch
    ~seed ~summary_file ~cache_dir ~max_table_bytes ~max_lru_bytes ~oracle
    ~prefetch ~timing =
  let cfg =
    Server.config ?workers ?deadline_ms ~max_queue ?max_batch ~seed ~solvers
      ?max_lru_bytes ?max_table_bytes ?cache_dir ~oracle ~prefetch ~timing
      listen
  in
  Printf.eprintf "hrserve: listening on %s (max queue %d)\n%!"
    (Server.listen_to_string listen) max_queue;
  Server.run cfg ~summary:(fun json ->
      write_summary summary_file json;
      let geti k =
        match json with
        | Telemetry.Obj fields -> (
            match List.assoc_opt k fields with
            | Some (Telemetry.Int i) -> i
            | _ -> 0)
        | _ -> 0
      in
      Printf.eprintf
        "hrserve: %d connection(s), %d completed, %d shed, %d error(s), %.1f ms solving\n"
        (geti "connections") (geti "completed") (geti "shed") (geti "errors")
        (match json with
        | Telemetry.Obj fields -> (
            match List.assoc_opt "solve_ms" fields with
            | Some (Telemetry.Float f) -> f
            | _ -> 0.)
        | _ -> 0.));
  0

(* ------------------------------------------------------------------ *)

let run stdio listen workers deadline_ms solver_names max_queue max_batch seed
    summary_file cache_dir max_table_mb max_lru_mb oracle_policy no_prefetch
    no_timing =
  if max_queue < 1 then failwith "--max-queue must be >= 1";
  let mib what = Option.map (fun s -> Hr_util.Cli.positive_exn ~what s * 1024 * 1024) in
  let max_table_bytes = mib "--max-table-mb" max_table_mb in
  let max_lru_bytes = mib "--max-lru-mb" max_lru_mb in
  let oracle =
    Hr_util.Cli.enum_exn ~what:"--oracle" Interval_cost.policy_enum oracle_policy
  in
  let solvers = solvers_of_names solver_names in
  let timing = not no_timing in
  match listen with
  | None ->
      run_stdio ~workers ~deadline_ms ~solvers ~max_queue ~seed ~summary_file
        ~cache_dir ~max_table_bytes ~max_lru_bytes ~oracle ~timing
  | Some addr ->
      if stdio then failwith "--stdio and --listen are mutually exclusive";
      let listen =
        match Server.listen_of_string addr with
        | Ok l -> l
        | Error e -> failwith e
      in
      run_socket ~listen ~workers ~deadline_ms ~solvers ~max_queue ~max_batch
        ~seed ~summary_file ~cache_dir ~max_table_bytes ~max_lru_bytes ~oracle
        ~prefetch:(not no_prefetch) ~timing

let stdio =
  Arg.(
    value & flag
    & info [ "stdio" ]
        ~doc:
          "Serve the JSON-lines loop over stdin/stdout (the default when \
           $(b,--listen) is absent).")

let listen =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Serve concurrently on a socket instead of stdin: $(b,unix:PATH) or \
           $(b,tcp:HOST:PORT) (empty or * host binds every interface; port 0 \
           picks a free port).  Stop with SIGINT/SIGTERM — in-flight requests \
           are drained, then the hyperreconf.serve/1 summary is written.")

let workers =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker domains in the solve pool (default: the recommended domain count).")

let deadline_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Global cooperative budget per batch, carved into fair per-request \
           slices.  Cut-off results are best-so-far plans, marked inexact.  \
           Per-request $(i,deadline_ms) envelope fields tighten (never extend) \
           this budget.")

let solver_names =
  Arg.(
    value
    & opt_all string []
    & info [ "solver" ] ~docv:"NAME"
        ~doc:
          "Race only this registered solver (repeatable).  Default: every \
           applicable registered solver.")

let max_queue =
  Arg.(
    value
    & opt int 64
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Bounded request queue.  stdio: at most $(docv) requests are read \
           before the batch is solved and answered (backpressure on stdin).  \
           Socket: admission bound — beyond it requests are answered with \
           structured $(i,overloaded) errors instead of queueing (load \
           shedding), never dropped.")

let max_batch =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-batch" ] ~docv:"N"
        ~doc:
          "Socket mode: at most $(docv) queued requests are drained into one \
           pool batch (default: $(b,--max-queue)).")

let seed =
  Arg.(value & opt int 2004 & info [ "seed" ] ~docv:"S" ~doc:"Solver RNG base seed.")

let summary_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "summary" ] ~docv:"FILE"
        ~doc:
          "Write the aggregated summary to $(docv): hyperreconf.batch/1 at EOF \
           (stdio), hyperreconf.serve/1 at shutdown (socket).")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persistent dense-table cache directory (created if missing): tables \
           are mmap-loaded from it instead of being rebuilt, and stored into it \
           after cold builds — reuse survives server restarts.")

let max_table_mb =
  Arg.(
    value
    & opt (some string) None
    & info [ "max-table-mb" ] ~docv:"MB"
        ~doc:
          "Per-instance dense-table memory cap in MiB (a positive integer; \
           default 128).  Instances whose table would exceed it degrade to the \
           memory-bounded memoizer.")

let max_lru_mb =
  Arg.(
    value
    & opt (some string) None
    & info [ "max-lru-mb" ] ~docv:"MB"
        ~doc:
          "Byte budget in MiB for the in-process oracle cache (a positive \
           integer).  Least-recently-used problems are evicted past it; \
           default: unbounded, the pre-LRU behaviour.")

let oracle_policy =
  Arg.(
    value
    & opt string "auto"
    & info [ "oracle" ] ~docv:"POLICY"
        ~doc:
          "Oracle ladder rung for switch-model cases: $(b,dense) (always the \
           O(1) precomputed tables), $(b,sparse) (always the occurrence index \
           — linear memory, never densified, bypasses the table cache), or \
           $(b,auto) (dense while it fits the byte budget; the default).")

let no_prefetch =
  Arg.(
    value & flag
    & info [ "no-prefetch" ]
        ~doc:
          "Socket mode: disable idle-worker prewarming of likely-next oracles \
           predicted from recent request history.")

let no_timing =
  Arg.(
    value & flag
    & info [ "no-timing" ]
        ~doc:
          "Zero the wall_ms field of every result (deterministic output for \
           byte-for-byte comparison across runs and transports).")

let cmd =
  let doc = "batched PHC solve service (JSON lines on stdin or a socket)" in
  Cmd.v (Cmd.info "hrserve" ~doc)
    Term.(
      const run $ stdio $ listen $ workers $ deadline_ms $ solver_names
      $ max_queue $ max_batch $ seed $ summary_file $ cache_dir $ max_table_mb
      $ max_lru_mb $ oracle_policy $ no_prefetch $ no_timing)

let () =
  match Cmd.eval' ~catch:false cmd with
  | code -> exit code
  | exception (Invalid_argument msg | Failure msg | Sys_error msg) ->
      Printf.eprintf "hrserve: %s\n" msg;
      exit 2
