(* CLI: the online reconfiguration driver.

   hrevolve [--seed S] [--profile default|append-heavy] [--events N]
            [--tasks M] [--n0 N] [--strategy NAME]... [--solver NAME]
            [--deadline-ms D] [--stream FILE] [--stream-out FILE]
            [--json FILE] [--results FILE] [--assert-equal] [--sweep]
            [--eta E]...

   Generates (or loads) a task-arrival/departure/trace-growth event
   stream, replays it under the selected replanning strategies
   (lib/online), and prints one per-event table per strategy plus a
   summary.  --assert-equal exits 1 unless the incremental frontier
   reproduces the full re-solve event for event (equal cost and
   bit-identical plan).  --sweep runs the eta x tasks x events
   experiment harness instead.  See docs/online.md. *)

open Cmdliner
module Online = Hr_online

let seq_params =
  {
    Hr_core.Sync_cost.default_params with
    Hr_core.Sync_cost.reconf = Hr_core.Sync_cost.Task_sequential;
  }

let load_stream path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Hr_core.Telemetry.json_of_string s with
  | Error msg -> failwith (path ^ ": " ^ msg)
  | Ok j -> (
      match Online.Event.stream_of_json j with
      | Error msg -> failwith (path ^ ": " ^ msg)
      | Ok pair -> pair)

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let profile_of_name = function
  | "default" -> Online.Events.default
  | "append-heavy" -> Online.Events.append_heavy
  | p -> failwith (Printf.sprintf "unknown profile %S" p)

let run seed profile events tasks n0 strategies solver deadline_ms stream_in
    stream_out json_out results_out assert_equal sweep etas =
  let profile = profile_of_name profile in
  let profile =
    {
      profile with
      Online.Events.events = Option.value events ~default:profile.Online.Events.events;
      tasks = Option.value tasks ~default:profile.Online.Events.tasks;
      n0 = Option.value n0 ~default:profile.Online.Events.n0;
    }
  in
  let base =
    {
      (Online.Replan.default_config Online.Replan.Full) with
      Online.Replan.solver;
      seed;
      deadline_ms;
      params = seq_params;
    }
  in
  if sweep then begin
    let etas = if etas = [] then [ 0.5; 1.0; 2.0 ] else etas in
    let sweep = Online.Experiment.run ~profile ~etas ~config:base ~seed () in
    let table = Online.Experiment.table sweep in
    print_string table;
    print_newline ();
    Option.iter (fun p -> write_file p table) results_out;
    Option.iter
      (fun p ->
        write_file p
          (Hr_core.Telemetry.json_to_string (Online.Experiment.to_json sweep)))
      json_out;
    0
  end
  else begin
    let strategies =
      let named =
        List.map
          (fun s ->
            match Online.Replan.strategy_of_string s with
            | Ok st -> st
            | Error msg -> failwith msg)
          strategies
      in
      let named =
        if named = [] then Online.Replan.[ Full; Incremental ] else named
      in
      if
        assert_equal
        && not
             (List.mem Online.Replan.Full named
             && List.mem Online.Replan.Incremental named)
      then Online.Replan.[ Full; Incremental ] @ named
      else named
    in
    let init, stream =
      match stream_in with
      | Some path -> load_stream path
      | None ->
          Online.Events.generate (Hr_util.Rng.create seed) profile
    in
    Option.iter
      (fun p ->
        write_file p
          (Hr_core.Telemetry.json_to_string
             (Online.Event.stream_to_json ~init stream)))
      stream_out;
    Printf.printf "%d task(s), %d step(s), %d event(s), seed %d\n"
      (Hr_core.Task_set.num_tasks init)
      (Hr_core.Task_set.steps init)
      (List.length stream) seed;
    let runs =
      List.map
        (fun strategy ->
          let r =
            Online.Replan.run { base with Online.Replan.strategy } ~init stream
          in
          (strategy, r))
        strategies
    in
    let buf = Buffer.create 1024 in
    List.iter
      (fun (strategy, r) ->
        Buffer.add_string buf
          (Printf.sprintf "-- %s --\n"
             (Online.Replan.strategy_name strategy));
        Buffer.add_string buf (Online.Replan.table r);
        Buffer.add_char buf '\n';
        Buffer.add_string buf
          (Printf.sprintf
             "total %d  final %d  replans %d  extensions %d  %.1f ms\n\n"
             r.Online.Replan.total_cost r.Online.Replan.final_cost
             r.Online.Replan.replans r.Online.Replan.extensions
             r.Online.Replan.total_ms))
      runs;
    print_string (Buffer.contents buf);
    Option.iter (fun p -> write_file p (Buffer.contents buf)) results_out;
    Option.iter
      (fun p ->
        let docs =
          List.map
            (fun (strategy, r) ->
              Online.Replan.to_json
                { base with Online.Replan.strategy }
                r)
            runs
        in
        write_file p
          (Hr_core.Telemetry.json_to_string
             (Hr_core.Telemetry.Obj [ ("runs", Hr_core.Telemetry.List docs) ])))
      json_out;
    if assert_equal then begin
      let find s = List.assoc s runs in
      let full = find Online.Replan.Full
      and inc = find Online.Replan.Incremental in
      let mismatches =
        List.filter_map
          (fun (f, i) ->
            if
              f.Online.Replan.cost = i.Online.Replan.cost
              && Hr_core.Breakpoints.equal f.Online.Replan.plan
                   i.Online.Replan.plan
            then None
            else
              Some
                (Printf.sprintf
                   "event %d (%s): full cost %d, incremental cost %d%s"
                   f.Online.Replan.index f.Online.Replan.label
                   f.Online.Replan.cost i.Online.Replan.cost
                   (if f.Online.Replan.cost = i.Online.Replan.cost then
                      " (plans differ)"
                    else "")))
          (List.combine full.Online.Replan.records inc.Online.Replan.records)
      in
      match mismatches with
      | [] ->
          Printf.printf "incremental == full across %d event(s)\n"
            (List.length full.Online.Replan.records - 1);
          0
      | ms ->
          List.iter prerr_endline ms;
          Printf.eprintf "hrevolve: incremental diverged from full re-solve\n";
          1
    end
    else 0
  end

let seed =
  Arg.(value & opt int 2004 & info [ "seed" ] ~docv:"S" ~doc:"Stream generator seed (also the per-replan solver seed).")

let profile =
  Arg.(
    value
    & opt string "default"
    & info [ "profile" ] ~docv:"P"
        ~doc:"Stream profile: $(b,default) (mixed traffic) or $(b,append-heavy) (pure trace growth).")

let events =
  Arg.(value & opt (some int) None & info [ "events" ] ~docv:"N" ~doc:"Number of events to generate.")

let tasks =
  Arg.(value & opt (some int) None & info [ "tasks" ] ~docv:"M" ~doc:"Initial task count.")

let n0 =
  Arg.(value & opt (some int) None & info [ "n0" ] ~docv:"N" ~doc:"Initial trace horizon.")

let strategies =
  Arg.(
    value
    & opt_all string []
    & info [ "strategy" ] ~docv:"NAME"
        ~doc:"Replanning strategy (repeatable): $(b,none), $(b,full), $(b,incremental), $(b,warm).  Default: full and incremental.")

let solver =
  Arg.(
    value
    & opt (some string) None
    & info [ "solver" ] ~docv:"NAME"
        ~doc:"Registered backend to replan with.  Default: automatic (online-dp, then the exact DPs, then heuristics).")

let deadline_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"D" ~doc:"Cooperative budget per replan.")

let stream_in =
  Arg.(
    value
    & opt (some string) None
    & info [ "stream" ] ~docv:"FILE"
        ~doc:"Load a hyperreconf.stream/1 JSON file instead of generating.")

let stream_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "stream-out" ] ~docv:"FILE" ~doc:"Write the event stream as JSON.")

let json_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write per-event records (or the sweep) as JSON.")

let results_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "results" ] ~docv:"FILE" ~doc:"Write the rendered tables to $(docv).")

let assert_equal =
  Arg.(
    value & flag
    & info [ "assert-equal" ]
        ~doc:"Exit 1 unless the incremental re-solve matches the full re-solve event for event (requires exact backends; both strategies are added if missing).")

let sweep =
  Arg.(
    value & flag
    & info [ "sweep" ]
        ~doc:"Run the eta x tasks x events experiment harness over all four strategies.")

let etas =
  Arg.(
    value
    & opt_all float []
    & info [ "eta" ] ~docv:"E"
        ~doc:"Cost-weight scaling for --sweep (repeatable).  Default: 0.5 1.0 2.0.")

let cmd =
  let doc = "online reconfiguration: event streams and incremental replanning" in
  Cmd.v (Cmd.info "hrevolve" ~doc)
    Term.(
      const run $ seed $ profile $ events $ tasks $ n0 $ strategies $ solver
      $ deadline_ms $ stream_in $ stream_out $ json_out $ results_out
      $ assert_equal $ sweep $ etas)

let () =
  match Cmd.eval' ~catch:false cmd with
  | code -> exit code
  | exception (Invalid_argument msg | Failure msg | Sys_error msg) ->
      Printf.eprintf "hrevolve: %s\n" msg;
      exit 2
